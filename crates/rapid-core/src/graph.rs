//! The index-based task-dependence graph.
//!
//! Tasks and data objects are identified by dense `u32` indices
//! ([`TaskId`], [`ObjId`]); adjacency and access sets are stored in
//! compressed (CSR-style) form so that traversals are cache-friendly and
//! allocation-free, following the flat-index idiom of high-performance Rust
//! graph code.

use std::fmt;

/// Identifier of a task (a node of the dependence DAG).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

/// Identifier of a distinct data object.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u32);

/// Identifier of a (virtual) processor.
pub type ProcId = u32;

impl TaskId {
    /// The index as a `usize`, for slice addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ObjId {
    /// The index as a `usize`, for slice addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Compressed adjacency: `targets[offsets[i]..offsets[i+1]]` are the
/// neighbours of node `i`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Build from per-node neighbour lists.
    pub fn from_lists(lists: &[Vec<u32>]) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut targets = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        offsets.push(0);
        for l in lists {
            targets.extend_from_slice(l);
            offsets.push(targets.len() as u32);
        }
        Csr { offsets, targets }
    }

    /// Neighbours of node `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// True when the structure has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of stored edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }
}

/// A transformed task-dependence graph: a DAG over tasks, plus the
/// read/write access sets relating tasks to data objects.
///
/// Invariants (checked by [`TaskGraphBuilder::build`]):
/// - the edge relation is acyclic,
/// - every access references an existing object,
/// - edge lists and access lists are sorted and duplicate-free.
#[derive(Clone, Debug)]
pub struct TaskGraph {
    n_tasks: usize,
    n_objs: usize,
    succs: Csr,
    preds: Csr,
    reads: Csr,
    writes: Csr,
    /// Tasks reading each object (transpose of `reads`).
    readers: Csr,
    /// Tasks writing each object (transpose of `writes`).
    writers: Csr,
    /// Tasks accessing each object at all (transpose of the merged
    /// read∪write access relation, deduplicated). The reverse index the
    /// incremental MPO priority maintenance walks when an object is
    /// allocated.
    accessors: Csr,
    task_weight: Vec<f64>,
    obj_size: Vec<u64>,
    task_label: Vec<String>,
    /// Commuting-group id per task (`u32::MAX` = none). Tasks sharing a
    /// group update a common object with commutative operations and may
    /// execute in any relative order (paper §2: "commuting tasks can be
    /// marked in a task graph").
    commute_group: Vec<u32>,
}

impl TaskGraph {
    /// Number of tasks.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Number of data objects.
    #[inline]
    pub fn num_objects(&self) -> usize {
        self.n_objs
    }

    /// Number of dependence edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.succs.num_edges()
    }

    /// Iterator over all task ids.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> {
        (0..self.n_tasks as u32).map(TaskId)
    }

    /// Iterator over all object ids.
    pub fn objects(&self) -> impl Iterator<Item = ObjId> {
        (0..self.n_objs as u32).map(ObjId)
    }

    /// Immediate successors (children) of `t`.
    #[inline]
    pub fn succs(&self, t: TaskId) -> &[u32] {
        self.succs.row(t.idx())
    }

    /// Immediate predecessors (parents) of `t`.
    #[inline]
    pub fn preds(&self, t: TaskId) -> &[u32] {
        self.preds.row(t.idx())
    }

    /// Objects read by `t` (sorted).
    #[inline]
    pub fn reads(&self, t: TaskId) -> &[u32] {
        self.reads.row(t.idx())
    }

    /// Objects written by `t` (sorted).
    #[inline]
    pub fn writes(&self, t: TaskId) -> &[u32] {
        self.writes.row(t.idx())
    }

    /// All objects accessed (read or written) by `t`, deduplicated.
    pub fn accesses(&self, t: TaskId) -> impl Iterator<Item = ObjId> + '_ {
        merge_sorted(self.reads(t), self.writes(t)).map(ObjId)
    }

    /// Tasks that read object `d` (sorted).
    #[inline]
    pub fn readers(&self, d: ObjId) -> &[u32] {
        self.readers.row(d.idx())
    }

    /// Tasks that write object `d` (sorted).
    #[inline]
    pub fn writers(&self, d: ObjId) -> &[u32] {
        self.writers.row(d.idx())
    }

    /// Tasks that read *or* write object `d` (sorted, each task once even
    /// when it both reads and writes `d`). Built once at graph
    /// construction in O(Σ access-set sizes).
    #[inline]
    pub fn accessors(&self, d: ObjId) -> &[u32] {
        self.accessors.row(d.idx())
    }

    /// Computational weight of task `t` (in abstract time units or flops).
    #[inline]
    pub fn weight(&self, t: TaskId) -> f64 {
        self.task_weight[t.idx()]
    }

    /// Size of object `d` in allocation units (one unit = one `f64`).
    #[inline]
    pub fn obj_size(&self, d: ObjId) -> u64 {
        self.obj_size[d.idx()]
    }

    /// Human-readable label of task `t` (may be empty).
    #[inline]
    pub fn task_label(&self, t: TaskId) -> &str {
        &self.task_label[t.idx()]
    }

    /// Commuting-group id of `t`, if it is marked as commuting.
    #[inline]
    pub fn commute_group(&self, t: TaskId) -> Option<u32> {
        let g = self.commute_group[t.idx()];
        (g != u32::MAX).then_some(g)
    }

    /// Do `a` and `b` commute (same marked group)?
    #[inline]
    pub fn commutes(&self, a: TaskId, b: TaskId) -> bool {
        self.commute_group[a.idx()] != u32::MAX
            && self.commute_group[a.idx()] == self.commute_group[b.idx()]
    }

    /// Sum of all object sizes: the sequential space requirement `S1`
    /// of the paper (space dedicated to data-object content).
    pub fn seq_space(&self) -> u64 {
        self.obj_size.iter().sum()
    }

    /// True if there is an edge `a -> b`.
    pub fn has_edge(&self, a: TaskId, b: TaskId) -> bool {
        self.succs(a).binary_search(&b.0).is_ok()
    }

    /// Check *dependence completeness* (paper §3.4, property of transformed
    /// graphs from [5]): for every pair of tasks that access a common
    /// object with at least one writer among them, there must be a
    /// dependence path between the two.
    ///
    /// This is the precondition of the data-consistency half of Theorem 1.
    /// Complexity is O(v·e) in the worst case; intended for tests and
    /// inspector-stage validation, not hot paths.
    pub fn is_dependence_complete(&self) -> bool {
        // Reachability via per-source DFS over a topological order, using a
        // bitset per source. Fine for validation-sized graphs.
        let order = match crate::algo::topo_sort(self) {
            Some(o) => o,
            None => return false,
        };
        let n = self.n_tasks;
        // position of each task in topological order
        let mut pos = vec![0u32; n];
        for (i, &t) in order.iter().enumerate() {
            pos[t.idx()] = i as u32;
        }
        let connected = |a: TaskId, b: TaskId| -> bool {
            // DFS from the earlier to the later in topo order.
            let (src, dst) = if pos[a.idx()] <= pos[b.idx()] { (a, b) } else { (b, a) };
            let mut seen = vec![false; n];
            let mut stack = vec![src];
            seen[src.idx()] = true;
            while let Some(t) = stack.pop() {
                if t == dst {
                    return true;
                }
                for &s in self.succs(t) {
                    if pos[s as usize] <= pos[dst.idx()] && !seen[s as usize] {
                        seen[s as usize] = true;
                        stack.push(TaskId(s));
                    }
                }
            }
            false
        };
        for d in self.objects() {
            let ws = self.writers(d);
            let rs = self.readers(d);
            for (i, &w1) in ws.iter().enumerate() {
                for &w2 in &ws[i + 1..] {
                    // Marked commuting writers may stay unordered.
                    if self.commutes(TaskId(w1), TaskId(w2)) {
                        continue;
                    }
                    if !connected(TaskId(w1), TaskId(w2)) {
                        return false;
                    }
                }
                for &r in rs {
                    // Commuting updaters read the object too; their
                    // reads-vs-writes need no ordering among themselves.
                    if self.commutes(TaskId(w1), TaskId(r)) {
                        continue;
                    }
                    if r != w1 && !connected(TaskId(w1), TaskId(r)) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Merge two sorted `u32` slices, removing duplicates.
fn merge_sorted<'a>(a: &'a [u32], b: &'a [u32]) -> impl Iterator<Item = u32> + 'a {
    let mut i = 0;
    let mut j = 0;
    std::iter::from_fn(move || {
        if i < a.len() && (j >= b.len() || a[i] < b[j]) {
            i += 1;
            Some(a[i - 1])
        } else if j < b.len() {
            if i < a.len() && a[i] == b[j] {
                i += 1;
            }
            j += 1;
            Some(b[j - 1])
        } else {
            None
        }
    })
}

/// Errors detected while constructing a [`TaskGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The declared edges contain a cycle (graph must be a DAG).
    Cycle,
    /// An edge or access referenced a task id out of range.
    BadTask(u32),
    /// An access referenced an object id out of range.
    BadObject(u32),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Cycle => write!(f, "task dependence graph contains a cycle"),
            GraphError::BadTask(t) => write!(f, "reference to unknown task T{t}"),
            GraphError::BadObject(d) => write!(f, "reference to unknown object d{d}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental builder for [`TaskGraph`].
///
/// ```
/// use rapid_core::graph::TaskGraphBuilder;
/// let mut b = TaskGraphBuilder::new();
/// let d0 = b.add_object(1);
/// let d1 = b.add_object(1);
/// let t0 = b.add_task(1.0, &[], &[d0]);       // writes d0
/// let t1 = b.add_task(1.0, &[d0], &[d1]);     // reads d0, writes d1
/// b.add_edge(t0, t1);
/// let g = b.build().unwrap();
/// assert_eq!(g.num_tasks(), 2);
/// assert!(g.has_edge(t0, t1));
/// ```
#[derive(Default, Clone, Debug)]
pub struct TaskGraphBuilder {
    task_weight: Vec<f64>,
    task_label: Vec<String>,
    reads: Vec<Vec<u32>>,
    writes: Vec<Vec<u32>>,
    edges: Vec<(u32, u32)>,
    obj_size: Vec<u64>,
    commute: Vec<(u32, u32)>,
}

impl TaskGraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a data object of `size` allocation units; returns its id.
    pub fn add_object(&mut self, size: u64) -> ObjId {
        self.obj_size.push(size);
        ObjId(self.obj_size.len() as u32 - 1)
    }

    /// Declare a task with computational `weight` and access sets.
    pub fn add_task(&mut self, weight: f64, reads: &[ObjId], writes: &[ObjId]) -> TaskId {
        self.add_task_labeled(String::new(), weight, reads, writes)
    }

    /// Declare a task carrying a human-readable label (used in traces and
    /// Gantt dumps).
    pub fn add_task_labeled(
        &mut self,
        label: String,
        weight: f64,
        reads: &[ObjId],
        writes: &[ObjId],
    ) -> TaskId {
        self.task_weight.push(weight);
        self.task_label.push(label);
        self.reads.push(reads.iter().map(|d| d.0).collect());
        self.writes.push(writes.iter().map(|d| d.0).collect());
        TaskId(self.task_weight.len() as u32 - 1)
    }

    /// Declare a true-dependence edge `from -> to`.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) {
        self.edges.push((from.0, to.0));
    }

    /// Replace the access sets of an already-declared task. Used by trace
    /// replayers that need to reserve a task id before its (possibly
    /// renamed) accesses are known.
    pub fn set_accesses(&mut self, t: TaskId, reads: &[ObjId], writes: &[ObjId]) {
        self.reads[t.idx()] = reads.iter().map(|d| d.0).collect();
        self.writes[t.idx()] = writes.iter().map(|d| d.0).collect();
    }

    /// Mark task `t` as member of commuting group `group`: tasks sharing
    /// a group may execute in any relative order.
    pub fn set_commute_group(&mut self, t: TaskId, group: u32) {
        self.commute.push((t.0, group));
    }

    /// Number of tasks declared so far.
    pub fn num_tasks(&self) -> usize {
        self.task_weight.len()
    }

    /// Number of objects declared so far.
    pub fn num_objects(&self) -> usize {
        self.obj_size.len()
    }

    /// Validate and freeze into a [`TaskGraph`].
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        self.build_sharded(1)
    }

    /// Parallel [`TaskGraphBuilder::build`]: the CSR transposes
    /// (per-object reader/writer/accessor lists) are assembled from
    /// per-shard partial lists built concurrently over contiguous task
    /// ranges on the std-only pool ([`crate::par`]). Concatenating shard
    /// partials in shard order visits tasks in ascending id order —
    /// exactly the sequential scan — so the result is bit-identical to
    /// `build()` for every thread count.
    pub fn build_par(self, nthreads: usize) -> Result<TaskGraph, GraphError> {
        self.build_sharded(nthreads.max(1))
    }

    fn build_sharded(self, nshards: usize) -> Result<TaskGraph, GraphError> {
        let n = self.task_weight.len();
        let m = self.obj_size.len();
        let mut succ_lists = vec![Vec::new(); n];
        let mut pred_lists = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            if a as usize >= n {
                return Err(GraphError::BadTask(a));
            }
            if b as usize >= n {
                return Err(GraphError::BadTask(b));
            }
            succ_lists[a as usize].push(b);
            pred_lists[b as usize].push(a);
        }
        let mut reads = self.reads;
        let mut writes = self.writes;
        // Normalize the per-task access sets in parallel (independent per
        // task), then validate object ids shard by shard; the first bad
        // id in (task, sorted position) order is reported, matching the
        // sequential scan.
        crate::par::for_each_shard_mut(nshards, &mut reads, |_start, chunk| {
            for rs in chunk {
                rs.sort_unstable();
                rs.dedup();
            }
        });
        crate::par::for_each_shard_mut(nshards, &mut writes, |_start, chunk| {
            for ws in chunk {
                ws.sort_unstable();
                ws.dedup();
            }
        });
        for sets in [&reads, &writes] {
            let bad = crate::par::map_shards(nshards, n, |_i, range| {
                range.flat_map(|t| sets[t].iter().copied()).find(|&d| d as usize >= m)
            });
            if let Some(d) = bad.into_iter().flatten().next() {
                return Err(GraphError::BadObject(d));
            }
        }
        crate::par::for_each_shard_mut(nshards, &mut succ_lists, |_start, chunk| {
            for l in chunk {
                l.sort_unstable();
                l.dedup();
            }
        });
        crate::par::for_each_shard_mut(nshards, &mut pred_lists, |_start, chunk| {
            for l in chunk {
                l.sort_unstable();
                l.dedup();
            }
        });
        // CSR transposes (readers, writers, accessors). Each shard walks
        // its contiguous task range emitting `(object, task)` pairs; the
        // accessor stream is the sorted merge of the task's read and
        // write sets, so each per-object list stays sorted and
        // duplicate-free without a final sort pass. Concatenating shard
        // streams in shard order visits tasks in ascending id order —
        // exactly the sequential scan, so the transposes are
        // bit-identical for every shard count.
        let reads_ref = &reads;
        let writes_ref = &writes;
        type Pairs = Vec<(u32, u32)>;
        let shard_pairs: Vec<(Pairs, Pairs, Pairs)> =
            crate::par::map_shards(nshards, n, |_i, range| {
                let mut rp: Pairs = Vec::new();
                let mut wp: Pairs = Vec::new();
                let mut ap: Pairs = Vec::new();
                for t in range {
                    let (rs, ws) = (&reads_ref[t], &writes_ref[t]);
                    for &d in rs {
                        rp.push((d, t as u32));
                    }
                    for &d in ws {
                        wp.push((d, t as u32));
                    }
                    for d in merge_sorted(rs, ws) {
                        ap.push((d, t as u32));
                    }
                }
                (rp, wp, ap)
            });
        let mut reader_lists = vec![Vec::new(); m];
        let mut writer_lists = vec![Vec::new(); m];
        let mut accessor_lists = vec![Vec::new(); m];
        for (rp, wp, ap) in &shard_pairs {
            for &(d, t) in rp {
                reader_lists[d as usize].push(t);
            }
            for &(d, t) in wp {
                writer_lists[d as usize].push(t);
            }
            for &(d, t) in ap {
                accessor_lists[d as usize].push(t);
            }
        }
        drop(shard_pairs);
        let mut commute_group = vec![u32::MAX; n];
        for &(t, grp) in &self.commute {
            if t as usize >= n {
                return Err(GraphError::BadTask(t));
            }
            commute_group[t as usize] = grp;
        }
        let g = TaskGraph {
            n_tasks: n,
            n_objs: m,
            succs: Csr::from_lists(&succ_lists),
            preds: Csr::from_lists(&pred_lists),
            reads: Csr::from_lists(&reads),
            writes: Csr::from_lists(&writes),
            readers: Csr::from_lists(&reader_lists),
            writers: Csr::from_lists(&writer_lists),
            accessors: Csr::from_lists(&accessor_lists),
            task_weight: self.task_weight,
            obj_size: self.obj_size,
            task_label: self.task_label,
            commute_group,
        };
        if crate::algo::topo_sort(&g).is_none() {
            return Err(GraphError::Cycle);
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = TaskGraphBuilder::new();
        let d0 = b.add_object(4);
        let d1 = b.add_object(2);
        let t0 = b.add_task(1.0, &[], &[d0]);
        let t1 = b.add_task(2.0, &[d0], &[d1]);
        let t2 = b.add_task(1.5, &[d0, d1], &[d1]);
        b.add_edge(t0, t1);
        b.add_edge(t1, t2);
        b.add_edge(t0, t2);
        let g = b.build().unwrap();
        assert_eq!(g.num_tasks(), 3);
        assert_eq!(g.num_objects(), 2);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.succs(t0), &[1, 2]);
        assert_eq!(g.preds(t2), &[0, 1]);
        assert_eq!(g.reads(t2), &[0, 1]);
        assert_eq!(g.writers(d1), &[1, 2]);
        assert_eq!(g.readers(d0), &[1, 2]);
        assert_eq!(g.seq_space(), 6);
        assert!((g.weight(t1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_rejected() {
        let mut b = TaskGraphBuilder::new();
        let d = b.add_object(1);
        let t0 = b.add_task(1.0, &[], &[d]);
        let t1 = b.add_task(1.0, &[d], &[]);
        b.add_edge(t0, t1);
        b.add_edge(t1, t0);
        assert_eq!(b.build().unwrap_err(), GraphError::Cycle);
    }

    #[test]
    fn bad_refs_rejected() {
        let mut b = TaskGraphBuilder::new();
        let t0 = b.add_task(1.0, &[ObjId(7)], &[]);
        let _ = t0;
        assert_eq!(b.build().unwrap_err(), GraphError::BadObject(7));

        let mut b = TaskGraphBuilder::new();
        let t0 = b.add_task(1.0, &[], &[]);
        b.add_edge(t0, TaskId(9));
        assert_eq!(b.build().unwrap_err(), GraphError::BadTask(9));
    }

    #[test]
    fn accessors_transpose_matches_accesses() {
        let mut b = TaskGraphBuilder::new();
        let d0 = b.add_object(1);
        let d1 = b.add_object(1);
        let d2 = b.add_object(1);
        let _t0 = b.add_task(1.0, &[d0, d1], &[d1]); // reads+writes d1: once
        let t1 = b.add_task(1.0, &[], &[d2]);
        let t2 = b.add_task(1.0, &[d2], &[d0]);
        b.add_edge(t1, t2);
        let g = b.build().unwrap();
        assert_eq!(g.accessors(d0), &[0, 2]);
        assert_eq!(g.accessors(d1), &[0]);
        assert_eq!(g.accessors(d2), &[1, 2]);
        // accessors is exactly the transpose of accesses().
        for d in g.objects() {
            for &t in g.accessors(d) {
                assert!(g.accesses(TaskId(t)).any(|x| x == d));
            }
        }
        for t in g.tasks() {
            for d in g.accesses(t) {
                assert!(g.accessors(d).binary_search(&t.0).is_ok());
            }
        }
    }

    #[test]
    fn accesses_merges_and_dedups() {
        let mut b = TaskGraphBuilder::new();
        let d0 = b.add_object(1);
        let d1 = b.add_object(1);
        let d2 = b.add_object(1);
        let t = b.add_task(1.0, &[d0, d2], &[d1, d2]);
        let g = b.build().unwrap();
        let acc: Vec<_> = g.accesses(t).collect();
        assert_eq!(acc, vec![d0, d1, d2]);
    }

    #[test]
    fn dependence_completeness() {
        // t0 writes d, t1 and t2 read d. Complete only if edges connect
        // writer to both readers.
        let mut b = TaskGraphBuilder::new();
        let d = b.add_object(1);
        let t0 = b.add_task(1.0, &[], &[d]);
        let t1 = b.add_task(1.0, &[d], &[]);
        let t2 = b.add_task(1.0, &[d], &[]);
        b.add_edge(t0, t1);
        let g = b.clone().build().unwrap();
        assert!(!g.is_dependence_complete(), "t2 not ordered w.r.t. writer");
        b.add_edge(t0, t2);
        let g = b.build().unwrap();
        assert!(g.is_dependence_complete());
    }

    #[test]
    fn two_writers_need_ordering() {
        let mut b = TaskGraphBuilder::new();
        let d = b.add_object(1);
        let t0 = b.add_task(1.0, &[], &[d]);
        let t1 = b.add_task(1.0, &[], &[d]);
        let g = b.clone().build().unwrap();
        let _ = (t0, t1);
        assert!(!g.is_dependence_complete());
        b.add_edge(t0, t1);
        assert!(b.build().unwrap().is_dependence_complete());
    }
}
