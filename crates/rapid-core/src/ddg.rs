//! Data-dependence-graph extraction and transformation (paper §2).
//!
//! A DDG derived from partitioned sequential code has three kinds of
//! dependence edges: *true* (read-after-write), *anti* (write-after-read)
//! and *output* (write-after-write). Anti and output edges that are
//! subsumed by true-dependence paths are redundant; most remaining ones can
//! be eliminated by program transformation (renaming, ref. [4] of the
//! paper). The result consumed by the scheduler is a *transformed* graph
//! containing true dependencies only — plus ordering chains for in-place
//! *updates* (read-modify-write accesses, which carry a true dependence on
//! the previous value by definition).
//!
//! [`TraceBuilder`] replays a sequential access trace and produces such a
//! transformed [`TaskGraph`]; graphs built this way are dependence-complete
//! by construction, which is the precondition of the paper's Theorem 1
//! data-consistency argument.

use crate::graph::{GraphError, ObjId, TaskGraph, TaskGraphBuilder, TaskId};

/// How a task touches an object in the sequential trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Reads the current value.
    Read,
    /// Overwrites the value without reading it (a *def*).
    Write,
    /// Reads and overwrites in place; carries a true dependence on the
    /// previous writer/updater and keeps in-place updaters totally
    /// ordered.
    Update,
    /// Commuting in-place update (paper §2: "commuting tasks can be
    /// marked in a task graph so that it can capture parallelism arising
    /// from commutative operations"). Consecutive `Accum` accesses to the
    /// same object form an unordered batch: each depends on the base
    /// value, none on each other, and any later access depends on the
    /// whole batch. The builder records each batch of two or more as a
    /// commuting group on the produced graph.
    Accum,
}

/// Renaming policy for `Write` accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePolicy {
    /// Allocate a fresh object version for every `Write` def, eliminating
    /// anti and output dependencies at the cost of more objects (the
    /// renaming transformation of the paper's §3.1 discussion).
    Rename,
    /// Keep writes in place; anti and output dependencies become real
    /// ordering edges in the produced graph.
    InPlace,
}

/// Edge-class statistics reported by [`TraceBuilder::build`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DdgStats {
    /// Read-after-write edges (including update chains).
    pub true_edges: usize,
    /// Write-after-read edges kept as ordering edges.
    pub anti_edges: usize,
    /// Write-after-write edges kept as ordering edges.
    pub output_edges: usize,
    /// Anti/output dependencies removed by renaming.
    pub eliminated_by_renaming: usize,
    /// Duplicate or transitively redundant edges dropped.
    pub redundant_removed: usize,
    /// Fresh object versions introduced by renaming.
    pub versions_added: usize,
    /// Commuting groups recorded from `Accum` batches (size >= 2).
    pub commuting_groups: usize,
}

/// The producer of an object version's current value: nothing yet, a
/// single writer, or a closed batch of commuting updaters.
#[derive(Clone, Debug, Default)]
enum Producer {
    #[default]
    None,
    Task(TaskId),
    Batch(Vec<TaskId>),
}

/// Builds a transformed task graph from a sequential access trace.
#[derive(Debug)]
pub struct TraceBuilder {
    b: TaskGraphBuilder,
    policy: WritePolicy,
    /// Current version of each *logical* object (identity under `Rename`).
    current: Vec<ObjId>,
    /// Size of each logical object (for renaming).
    logical_size: Vec<u64>,
    /// Producer of each current version's value.
    producer: Vec<Producer>,
    /// Readers since the last write of each current version.
    readers_since: Vec<Vec<TaskId>>,
    /// Open commuting batch per version (empty when none).
    open_batch: Vec<Vec<TaskId>>,
    /// Base producer an open batch accumulates onto.
    batch_base: Vec<Producer>,
    /// Readers of the base value, drained when the batch opened; every
    /// joiner must also be ordered after them (it overwrites what they
    /// read).
    batch_readers: Vec<Vec<TaskId>>,
    next_commute_group: u32,
    stats: DdgStats,
    edges: Vec<(TaskId, TaskId)>,
}

impl TraceBuilder {
    /// New builder with the given write policy.
    pub fn new(policy: WritePolicy) -> Self {
        TraceBuilder {
            b: TaskGraphBuilder::new(),
            policy,
            current: Vec::new(),
            logical_size: Vec::new(),
            producer: Vec::new(),
            readers_since: Vec::new(),
            open_batch: Vec::new(),
            batch_base: Vec::new(),
            batch_readers: Vec::new(),
            next_commute_group: 0,
            stats: DdgStats::default(),
            edges: Vec::new(),
        }
    }

    /// Declare a logical data object of `size` units; returns its id.
    /// Under [`WritePolicy::Rename`] the id names the *latest version* at
    /// each point of the trace.
    pub fn add_object(&mut self, size: u64) -> ObjId {
        let d = self.b.add_object(size);
        self.current.push(d);
        self.logical_size.push(size);
        self.producer.push(Producer::None);
        self.readers_since.push(Vec::new());
        self.open_batch.push(Vec::new());
        self.batch_base.push(Producer::None);
        self.batch_readers.push(Vec::new());
        debug_assert_eq!(self.current.len(), d.idx() + 1);
        d
    }

    /// Emit edges from a producer to `t` as true dependencies.
    fn edges_from_producer(&mut self, p: &Producer, t: TaskId) {
        match p {
            Producer::None => {}
            Producer::Task(w) => {
                if *w != t {
                    self.push_edge(*w, t, EdgeClass::True);
                }
            }
            Producer::Batch(ms) => {
                for &m in ms {
                    if m != t {
                        self.push_edge(m, t, EdgeClass::True);
                    }
                }
            }
        }
    }

    /// Close any open commuting batch on version `v`: its members become
    /// the producer, and batches of two or more are recorded as a
    /// commuting group.
    fn close_batch(&mut self, v: usize) {
        if self.open_batch[v].is_empty() {
            return;
        }
        let members = std::mem::take(&mut self.open_batch[v]);
        if members.len() >= 2 {
            let gid = self.next_commute_group;
            self.next_commute_group += 1;
            self.stats.commuting_groups += 1;
            for &m in &members {
                self.b.set_commute_group(m, gid);
            }
        }
        self.producer[v] = Producer::Batch(members);
        self.batch_base[v] = Producer::None;
        self.batch_readers[v].clear();
    }

    /// Append the next task of the sequential trace. `accesses` pairs
    /// logical object ids with access kinds; duplicates are allowed (the
    /// strongest kind wins: Update > Write > Read).
    pub fn add_task(&mut self, weight: f64, accesses: &[(ObjId, AccessKind)]) -> TaskId {
        self.add_task_labeled(String::new(), weight, accesses)
    }

    /// [`Self::add_task`] with a label for traces and Gantt dumps.
    pub fn add_task_labeled(
        &mut self,
        label: String,
        weight: f64,
        accesses: &[(ObjId, AccessKind)],
    ) -> TaskId {
        // Collapse duplicate accesses to the strongest kind.
        let mut acc: Vec<(ObjId, AccessKind)> = accesses.to_vec();
        acc.sort_by_key(|&(d, _)| d);
        let mut merged: Vec<(ObjId, AccessKind)> = Vec::with_capacity(acc.len());
        for (d, k) in acc {
            match merged.last_mut() {
                Some((pd, pk)) if *pd == d => {
                    let stronger = match (*pk, k) {
                        (AccessKind::Update, _) | (_, AccessKind::Update) => AccessKind::Update,
                        (AccessKind::Accum, AccessKind::Accum) => AccessKind::Accum,
                        // Mixing a commuting update with any other kind on
                        // the same object forces an ordered update.
                        (AccessKind::Accum, _) | (_, AccessKind::Accum) => AccessKind::Update,
                        (AccessKind::Write, AccessKind::Read)
                        | (AccessKind::Read, AccessKind::Write) => AccessKind::Update,
                        (AccessKind::Write, AccessKind::Write) => AccessKind::Write,
                        (AccessKind::Read, AccessKind::Read) => AccessKind::Read,
                    };
                    *pk = stronger;
                }
                _ => merged.push((d, k)),
            }
        }

        // A task commuting on two *different* objects would need to be a
        // member of two groups at once, which the one-group-per-task model
        // cannot represent soundly; degrade such accesses to ordered
        // updates (still correct, merely stricter).
        if merged.iter().filter(|&&(_, k)| k == AccessKind::Accum).count() > 1 {
            for (_, k) in merged.iter_mut() {
                if *k == AccessKind::Accum {
                    *k = AccessKind::Update;
                }
            }
        }

        let mut reads: Vec<ObjId> = Vec::new();
        let mut writes: Vec<ObjId> = Vec::new();
        // Reserve the task id first so edges can point at it.
        let t = self.b.add_task_labeled(label, weight, &[], &[]);
        for (logical, kind) in merged {
            let li = logical.idx();
            let cur = self.current[li];
            match kind {
                AccessKind::Read => {
                    // Reading mid-batch would observe partial accumulation;
                    // the batch closes and the reader sees the joint value.
                    self.close_batch(cur.idx());
                    let p = self.producer[cur.idx()].clone();
                    self.edges_from_producer(&p, t);
                    self.readers_since[cur.idx()].push(t);
                    reads.push(cur);
                }
                AccessKind::Update => {
                    // True dependence on the previous producer, and
                    // ordering after intervening readers (they must see
                    // the old value).
                    self.close_batch(cur.idx());
                    let p = self.producer[cur.idx()].clone();
                    self.edges_from_producer(&p, t);
                    let readers = std::mem::take(&mut self.readers_since[cur.idx()]);
                    for r in readers {
                        if r != t {
                            self.push_edge(r, t, EdgeClass::Anti);
                        }
                    }
                    self.producer[cur.idx()] = Producer::Task(t);
                    reads.push(cur);
                    writes.push(cur);
                }
                AccessKind::Accum => {
                    let v = cur.idx();
                    if self.open_batch[v].is_empty() {
                        // Start a new batch on the current value. Stash
                        // the drained readers: every later joiner must be
                        // ordered after them too.
                        let readers = std::mem::take(&mut self.readers_since[v]);
                        for &r in &readers {
                            if r != t {
                                self.push_edge(r, t, EdgeClass::Anti);
                            }
                        }
                        self.batch_readers[v] = readers;
                        let base = self.producer[v].clone();
                        self.edges_from_producer(&base, t);
                        self.batch_base[v] = base;
                        self.open_batch[v].push(t);
                    } else {
                        // Join: depend on the base and on the pre-batch
                        // readers — not on the other batch members.
                        let base = self.batch_base[v].clone();
                        self.edges_from_producer(&base, t);
                        let readers = self.batch_readers[v].clone();
                        for r in readers {
                            if r != t {
                                self.push_edge(r, t, EdgeClass::Anti);
                            }
                        }
                        self.open_batch[v].push(t);
                    }
                    reads.push(cur);
                    writes.push(cur);
                }
                AccessKind::Write => match self.policy {
                    WritePolicy::Rename => {
                        self.close_batch(cur.idx());
                        let has_producer = !matches!(self.producer[cur.idx()], Producer::None);
                        let prior_deps =
                            self.readers_since[cur.idx()].len() + usize::from(has_producer);
                        if prior_deps > 0 && has_producer {
                            // A fresh version removes the would-be anti and
                            // output edges entirely.
                            self.stats.eliminated_by_renaming += prior_deps;
                            let nv = self.new_version(li, t);
                            writes.push(nv);
                        } else {
                            // First def (or def after reads of the initial
                            // value with no writer): just take ownership.
                            self.stats.eliminated_by_renaming +=
                                self.readers_since[cur.idx()].len();
                            let readers = std::mem::take(&mut self.readers_since[cur.idx()]);
                            if readers.is_empty() {
                                self.producer[cur.idx()] = Producer::Task(t);
                                writes.push(cur);
                            } else {
                                let nv = self.new_version(li, t);
                                writes.push(nv);
                            }
                        }
                    }
                    WritePolicy::InPlace => {
                        self.close_batch(cur.idx());
                        let p = self.producer[cur.idx()].clone();
                        match &p {
                            Producer::None => {}
                            Producer::Task(w) => {
                                if *w != t {
                                    self.push_edge(*w, t, EdgeClass::Output);
                                }
                            }
                            Producer::Batch(ms) => {
                                for &m in ms {
                                    if m != t {
                                        self.push_edge(m, t, EdgeClass::Output);
                                    }
                                }
                            }
                        }
                        let readers = std::mem::take(&mut self.readers_since[cur.idx()]);
                        for r in readers {
                            if r != t {
                                self.push_edge(r, t, EdgeClass::Anti);
                            }
                        }
                        self.producer[cur.idx()] = Producer::Task(t);
                        writes.push(cur);
                    }
                },
            }
        }
        self.set_task_accesses(t, &reads, &writes);
        t
    }

    /// Allocate a fresh version of logical object `li` produced by `t`.
    fn new_version(&mut self, li: usize, t: TaskId) -> ObjId {
        let nv = self.b.add_object(self.logical_size[li]);
        self.stats.versions_added += 1;
        self.current[li] = nv;
        self.producer.push(Producer::Task(t));
        self.readers_since.push(Vec::new());
        self.open_batch.push(Vec::new());
        self.batch_base.push(Producer::None);
        self.batch_readers.push(Vec::new());
        nv
    }

    fn set_task_accesses(&mut self, t: TaskId, reads: &[ObjId], writes: &[ObjId]) {
        // TaskGraphBuilder stores access lists by task index; we re-declare
        // them through a small shim since the builder API is append-only.
        self.b.set_accesses(t, reads, writes);
    }

    fn push_edge(&mut self, from: TaskId, to: TaskId, class: EdgeClass) {
        match class {
            EdgeClass::True => self.stats.true_edges += 1,
            EdgeClass::Anti => self.stats.anti_edges += 1,
            EdgeClass::Output => self.stats.output_edges += 1,
        }
        self.edges.push((from, to));
    }

    /// Finish: deduplicate edges (optionally transitively reduce) and build
    /// the transformed graph.
    pub fn build(mut self, reduce: bool) -> Result<(TaskGraph, DdgStats), GraphError> {
        // Flush still-open commuting batches so their groups are recorded.
        for v in 0..self.open_batch.len() {
            self.close_batch(v);
        }
        self.edges.sort_unstable_by_key(|&(a, b)| (a.0, b.0));
        let before = self.edges.len();
        self.edges.dedup();
        self.stats.redundant_removed += before - self.edges.len();
        if reduce {
            let (kept, removed) = transitive_reduce(self.b.num_tasks(), &self.edges);
            self.stats.redundant_removed += removed;
            self.edges = kept;
        }
        for &(a, b) in &self.edges {
            self.b.add_edge(a, b);
        }
        let g = self.b.build()?;
        Ok((g, self.stats))
    }
}

#[derive(Clone, Copy)]
enum EdgeClass {
    True,
    Anti,
    Output,
}

/// Remove edges `(a, b)` for which another path `a -> … -> b` exists.
/// O(v·e) DFS-based reduction; the input edge list must describe a DAG.
fn transitive_reduce(n: usize, edges: &[(TaskId, TaskId)]) -> (Vec<(TaskId, TaskId)>, usize) {
    let mut succ = vec![Vec::new(); n];
    for &(a, b) in edges {
        succ[a.idx()].push(b.0);
    }
    for s in &mut succ {
        s.sort_unstable();
        s.dedup();
    }
    let mut keep = Vec::with_capacity(edges.len());
    let mut removed = 0usize;
    let mut mark = vec![0u32; n];
    let mut epoch = 0u32;
    let mut stack: Vec<u32> = Vec::new();
    for a in 0..n {
        if succ[a].len() < 2 {
            for &b in &succ[a] {
                keep.push((TaskId(a as u32), TaskId(b)));
            }
            continue;
        }
        for &b in &succ[a] {
            // Is b reachable from a without using the direct edge a->b?
            epoch += 1;
            stack.clear();
            for &c in &succ[a] {
                if c != b {
                    stack.push(c);
                    mark[c as usize] = epoch;
                }
            }
            let mut found = false;
            while let Some(v) = stack.pop() {
                if v == b {
                    found = true;
                    break;
                }
                for &w in &succ[v as usize] {
                    if mark[w as usize] != epoch {
                        mark[w as usize] = epoch;
                        stack.push(w);
                    }
                }
            }
            if found {
                removed += 1;
            } else {
                keep.push((TaskId(a as u32), TaskId(b)));
            }
        }
    }
    (keep, removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn true_dependence_chain() {
        let mut tb = TraceBuilder::new(WritePolicy::Rename);
        let d = tb.add_object(1);
        let t0 = tb.add_task(1.0, &[(d, AccessKind::Write)]);
        let t1 = tb.add_task(1.0, &[(d, AccessKind::Read)]);
        let t2 = tb.add_task(1.0, &[(d, AccessKind::Read)]);
        let (g, st) = tb.build(false).unwrap();
        assert_eq!(st.true_edges, 2);
        assert_eq!(st.anti_edges, 0);
        assert!(g.has_edge(t0, t1));
        assert!(g.has_edge(t0, t2));
        assert!(g.is_dependence_complete());
    }

    #[test]
    fn renaming_eliminates_output_and_anti() {
        let mut tb = TraceBuilder::new(WritePolicy::Rename);
        let d = tb.add_object(3);
        let _t0 = tb.add_task(1.0, &[(d, AccessKind::Write)]);
        let _t1 = tb.add_task(1.0, &[(d, AccessKind::Read)]);
        let _t2 = tb.add_task(1.0, &[(d, AccessKind::Write)]); // would be anti+output
        let _t3 = tb.add_task(1.0, &[(d, AccessKind::Read)]);
        let (g, st) = tb.build(false).unwrap();
        assert_eq!(st.anti_edges, 0);
        assert_eq!(st.output_edges, 0);
        assert_eq!(st.eliminated_by_renaming, 2); // one reader + one writer
        assert_eq!(st.versions_added, 1);
        assert_eq!(g.num_objects(), 2);
        // Both versions carry the logical size.
        assert_eq!(g.obj_size(crate::graph::ObjId(1)), 3);
        assert!(g.is_dependence_complete());
    }

    #[test]
    fn in_place_keeps_ordering_edges() {
        let mut tb = TraceBuilder::new(WritePolicy::InPlace);
        let d = tb.add_object(1);
        let t0 = tb.add_task(1.0, &[(d, AccessKind::Write)]);
        let t1 = tb.add_task(1.0, &[(d, AccessKind::Read)]);
        let t2 = tb.add_task(1.0, &[(d, AccessKind::Write)]);
        let (g, st) = tb.build(false).unwrap();
        assert_eq!(st.anti_edges, 1);
        assert_eq!(st.output_edges, 1);
        assert!(g.has_edge(t1, t2));
        assert!(g.has_edge(t0, t2));
        assert_eq!(g.num_objects(), 1);
        assert!(g.is_dependence_complete());
        let _ = t0;
    }

    #[test]
    fn update_chain_is_true_dependence() {
        let mut tb = TraceBuilder::new(WritePolicy::Rename);
        let d = tb.add_object(1);
        let t0 = tb.add_task(1.0, &[(d, AccessKind::Write)]);
        let t1 = tb.add_task(1.0, &[(d, AccessKind::Update)]);
        let t2 = tb.add_task(1.0, &[(d, AccessKind::Update)]);
        let (g, st) = tb.build(false).unwrap();
        assert_eq!(st.true_edges, 2);
        assert!(g.has_edge(t0, t1));
        assert!(g.has_edge(t1, t2));
        assert!(!g.has_edge(t0, t2));
        assert_eq!(g.num_objects(), 1, "updates never rename");
        assert!(g.is_dependence_complete());
    }

    #[test]
    fn duplicate_accesses_merge_to_update() {
        let mut tb = TraceBuilder::new(WritePolicy::Rename);
        let d = tb.add_object(1);
        let t0 = tb.add_task(1.0, &[(d, AccessKind::Write)]);
        let t1 = tb.add_task(1.0, &[(d, AccessKind::Read), (d, AccessKind::Write)]);
        let (g, _) = tb.build(false).unwrap();
        assert!(g.has_edge(t0, t1));
        assert_eq!(g.reads(t1), &[0]);
        assert_eq!(g.writes(t1), &[0]);
    }

    #[test]
    fn accum_batch_is_unordered() {
        // W, A1, A2, A3, R: every accumulator depends on W only; the
        // reader depends on all three; no edges among accumulators.
        let mut tb = TraceBuilder::new(WritePolicy::Rename);
        let d = tb.add_object(1);
        let w = tb.add_task(1.0, &[(d, AccessKind::Write)]);
        let a1 = tb.add_task(1.0, &[(d, AccessKind::Accum)]);
        let a2 = tb.add_task(1.0, &[(d, AccessKind::Accum)]);
        let a3 = tb.add_task(1.0, &[(d, AccessKind::Accum)]);
        let r = tb.add_task(1.0, &[(d, AccessKind::Read)]);
        let (g, st) = tb.build(false).unwrap();
        for a in [a1, a2, a3] {
            assert!(g.has_edge(w, a));
            assert!(g.has_edge(a, r));
        }
        assert!(!g.has_edge(a1, a2) && !g.has_edge(a2, a3) && !g.has_edge(a1, a3));
        assert_eq!(st.commuting_groups, 1);
        assert!(g.commutes(a1, a2) && g.commutes(a2, a3));
        assert!(!g.commutes(w, a1));
        // Relaxed dependence completeness accepts the unordered writers.
        assert!(g.is_dependence_complete());
    }

    #[test]
    fn ordered_update_closes_accum_batch() {
        let mut tb = TraceBuilder::new(WritePolicy::Rename);
        let d = tb.add_object(1);
        let a1 = tb.add_task(1.0, &[(d, AccessKind::Accum)]);
        let a2 = tb.add_task(1.0, &[(d, AccessKind::Accum)]);
        let u = tb.add_task(1.0, &[(d, AccessKind::Update)]);
        let (g, _) = tb.build(false).unwrap();
        assert!(g.has_edge(a1, u));
        assert!(g.has_edge(a2, u));
        assert!(!g.has_edge(a1, a2));
        assert!(g.is_dependence_complete());
    }

    #[test]
    fn read_splits_accum_batches() {
        // A1, R, A2: the read observes A1's value, so A2 must come after
        // both (a new batch on the post-read value).
        let mut tb = TraceBuilder::new(WritePolicy::Rename);
        let d = tb.add_object(1);
        let a1 = tb.add_task(1.0, &[(d, AccessKind::Accum)]);
        let r = tb.add_task(1.0, &[(d, AccessKind::Read)]);
        let a2 = tb.add_task(1.0, &[(d, AccessKind::Accum)]);
        let (g, st) = tb.build(false).unwrap();
        assert!(g.has_edge(a1, r));
        assert!(g.has_edge(a1, a2), "A2 accumulates onto A1's closed batch");
        assert!(g.has_edge(r, a2), "anti edge: the read sees the pre-A2 value");
        // Two singleton batches: no commuting group recorded.
        assert_eq!(st.commuting_groups, 0);
        assert!(!g.commutes(a1, a2));
    }

    #[test]
    fn batch_joiners_are_ordered_after_prebatch_readers() {
        // Regression: W, R, A1, A2 — both accumulators overwrite what R
        // read, so BOTH need anti edges from R (the joiner A2 used to get
        // only the base edge).
        let mut tb = TraceBuilder::new(WritePolicy::Rename);
        let d = tb.add_object(1);
        let w = tb.add_task(1.0, &[(d, AccessKind::Write)]);
        let r = tb.add_task(1.0, &[(d, AccessKind::Read)]);
        let a1 = tb.add_task(1.0, &[(d, AccessKind::Accum)]);
        let a2 = tb.add_task(1.0, &[(d, AccessKind::Accum)]);
        let (g, _) = tb.build(false).unwrap();
        assert!(g.has_edge(w, r));
        assert!(g.has_edge(r, a1), "batch starter ordered after reader");
        assert!(g.has_edge(r, a2), "batch joiner ordered after reader");
        assert!(g.has_edge(w, a1) && g.has_edge(w, a2));
        assert!(!g.has_edge(a1, a2));
        assert!(g.is_dependence_complete());
    }

    #[test]
    fn multi_object_accum_degrades_to_ordered_updates() {
        // A task accumulating two different objects cannot join two
        // commuting groups; it degrades to ordered updates.
        let mut tb = TraceBuilder::new(WritePolicy::Rename);
        let d = tb.add_object(1);
        let e = tb.add_object(1);
        let a1 = tb.add_task(1.0, &[(d, AccessKind::Accum)]);
        let both = tb.add_task(1.0, &[(d, AccessKind::Accum), (e, AccessKind::Accum)]);
        let a2 = tb.add_task(1.0, &[(d, AccessKind::Accum)]);
        let (g, _) = tb.build(false).unwrap();
        assert!(g.commute_group(both).is_none(), "degraded task has no group");
        assert!(g.has_edge(a1, both), "ordered update closes the batch");
        assert!(g.has_edge(both, a2));
        assert!(g.is_dependence_complete());
    }

    #[test]
    fn accum_plus_other_kind_in_one_task_degrades_to_update() {
        let mut tb = TraceBuilder::new(WritePolicy::Rename);
        let d = tb.add_object(1);
        let a1 = tb.add_task(1.0, &[(d, AccessKind::Accum)]);
        let mixed = tb.add_task(1.0, &[(d, AccessKind::Accum), (d, AccessKind::Read)]);
        let (g, _) = tb.build(false).unwrap();
        assert!(g.has_edge(a1, mixed), "mixed access is an ordered update");
        assert!(!g.commutes(a1, mixed));
    }

    #[test]
    fn transitive_reduction_drops_subsumed_edge() {
        let mut tb = TraceBuilder::new(WritePolicy::Rename);
        let d0 = tb.add_object(1);
        let d1 = tb.add_object(1);
        let t0 = tb.add_task(1.0, &[(d0, AccessKind::Write)]);
        let _t1 = tb.add_task(1.0, &[(d0, AccessKind::Read), (d1, AccessKind::Write)]);
        // t2 reads both d0 and d1: the edge t0->t2 is subsumed by
        // t0->t1->t2.
        let t2 = tb.add_task(1.0, &[(d0, AccessKind::Read), (d1, AccessKind::Read)]);
        let (g, st) = tb.build(true).unwrap();
        assert!(!g.has_edge(t0, t2));
        assert_eq!(st.redundant_removed, 1);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn read_of_initial_value_then_write_renames() {
        // A read of the never-written initial value followed by a write
        // must not let the writer overwrite what the reader sees.
        let mut tb = TraceBuilder::new(WritePolicy::Rename);
        let d = tb.add_object(1);
        let t0 = tb.add_task(1.0, &[(d, AccessKind::Read)]);
        let t1 = tb.add_task(1.0, &[(d, AccessKind::Write)]);
        let (g, st) = tb.build(false).unwrap();
        assert_eq!(st.anti_edges, 0);
        assert_eq!(g.num_objects(), 2);
        assert!(!g.has_edge(t0, t1));
        assert!(g.is_dependence_complete());
    }
}
