//! Graph algorithms shared across the workspace: topological sorting,
//! strongly connected components (Tarjan), and critical-path levels with
//! communication costs.

use crate::graph::{Csr, TaskGraph, TaskId};
use crate::schedule::{Assignment, CostModel};

/// Totally ordered `f64` wrapper for priority keys (`total_cmp`
/// semantics). Shared by the scheduling heaps (`rapid-sched`) and the
/// discrete-event executor's event queue (`rapid-rt`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Kahn topological sort. Returns `None` if the graph has a cycle.
pub fn topo_sort(g: &TaskGraph) -> Option<Vec<TaskId>> {
    let n = g.num_tasks();
    let mut indeg: Vec<u32> = (0..n).map(|t| g.preds(TaskId(t as u32)).len() as u32).collect();
    let mut queue: Vec<TaskId> =
        (0..n as u32).map(TaskId).filter(|t| indeg[t.idx()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let t = queue[head];
        head += 1;
        order.push(t);
        for &s in g.succs(t) {
            indeg[s as usize] -= 1;
            if indeg[s as usize] == 0 {
                queue.push(TaskId(s));
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Tarjan's strongly-connected-components algorithm over a generic CSR
/// adjacency. Returns `(component_of, num_components)`; component ids are
/// assigned in **reverse topological order** of the condensation (a
/// component's id is greater than those of components it can reach... more
/// precisely, Tarjan emits components in reverse topological order, so we
/// re-number them so that component ids form a valid topological order of
/// the condensation: if there is an edge from component `a` to component
/// `b`, then `a < b`).
pub fn tarjan_scc(adj: &Csr) -> (Vec<u32>, u32) {
    let n = adj.len();
    const UNSEEN: u32 = u32::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSEEN; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut ncomp = 0u32;

    // Iterative Tarjan: frame = (node, next child position).
    let mut call: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if index[start as usize] != UNSEEN {
            continue;
        }
        call.push((start, 0));
        index[start as usize] = next_index;
        low[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            let row = adj.row(v as usize);
            if *ci < row.len() {
                let w = row[*ci];
                *ci += 1;
                if index[w as usize] == UNSEEN {
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&mut (p, _)) = call.last_mut() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = ncomp;
                        if w == v {
                            break;
                        }
                    }
                    ncomp += 1;
                }
            }
        }
    }
    // Tarjan emits SCCs in reverse topological order; flip ids so that
    // edges go from smaller to larger component id.
    for c in comp.iter_mut() {
        *c = ncomp - 1 - *c;
    }
    (comp, ncomp)
}

/// Bottom level of every task: the length of the longest path from the task
/// to an exit task, **including** the task's own weight and inter-task
/// communication costs on the path (as used by the RCP priority in the
/// paper's Figure 2 discussion: the path `T[7,8], T[8], T[8,9]` has length 4
/// with unit weights because one message delay is included).
///
/// Communication cost of an edge `(a, b)` is charged only when the two
/// tasks are mapped to different processors under `assign`; pass
/// `None` to charge every edge (the machine-independent variant used before
/// mapping).
pub fn bottom_levels(g: &TaskGraph, cost: &CostModel, assign: Option<&Assignment>) -> Vec<f64> {
    let order = topo_sort(g).expect("bottom_levels requires a DAG");
    let mut bl = vec![0.0f64; g.num_tasks()];
    for &t in order.iter().rev() {
        let mut best = 0.0f64;
        for &s in g.succs(t) {
            let s = TaskId(s);
            let comm = edge_comm_cost(g, cost, assign, t, s);
            let cand = comm + bl[s.idx()];
            if cand > best {
                best = cand;
            }
        }
        bl[t.idx()] = g.weight(t) + best;
    }
    bl
}

/// Parallel [`bottom_levels`]: tasks are bucketed by *reverse depth*
/// (sinks at depth 0, a task one past the deepest of its successors) and
/// each bucket is evaluated concurrently — a task's successors always
/// live in strictly shallower buckets, so every read is of a finalized
/// value. Within a task the successor maximum is folded in CSR order,
/// the exact float-operation sequence of the sequential pass, so the
/// result is bit-identical for every thread count.
pub fn bottom_levels_par(
    g: &TaskGraph,
    cost: &CostModel,
    assign: Option<&Assignment>,
    nthreads: usize,
) -> Vec<f64> {
    let Some(order) = topo_sort(g) else {
        panic!("bottom_levels requires a DAG");
    };
    let n = g.num_tasks();
    let mut depth = vec![0u32; n];
    let mut max_depth = 0u32;
    for &t in order.iter().rev() {
        let mut d = 0u32;
        for &s in g.succs(t) {
            d = d.max(depth[s as usize] + 1);
        }
        depth[t.idx()] = d;
        max_depth = max_depth.max(d);
    }
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_depth as usize + 1];
    for t in 0..n as u32 {
        buckets[depth[t as usize] as usize].push(t);
    }
    let mut bl = vec![0.0f64; n];
    for bucket in &buckets {
        let bl_ref = &bl;
        let vals: Vec<Vec<f64>> = crate::par::map_shards(nthreads, bucket.len(), |_i, range| {
            range
                .map(|i| {
                    let t = TaskId(bucket[i]);
                    let mut best = 0.0f64;
                    for &s in g.succs(t) {
                        let s = TaskId(s);
                        let comm = edge_comm_cost(g, cost, assign, t, s);
                        let cand = comm + bl_ref[s.idx()];
                        if cand > best {
                            best = cand;
                        }
                    }
                    g.weight(t) + best
                })
                .collect()
        });
        let mut it = bucket.iter();
        for shard in vals {
            for v in shard {
                if let Some(&t) = it.next() {
                    bl[t as usize] = v;
                }
            }
        }
    }
    bl
}

/// Top level of every task: longest path length from an entry task to the
/// task, **excluding** the task's own weight.
pub fn top_levels(g: &TaskGraph, cost: &CostModel, assign: Option<&Assignment>) -> Vec<f64> {
    let order = topo_sort(g).expect("top_levels requires a DAG");
    let mut tl = vec![0.0f64; g.num_tasks()];
    for &t in order.iter() {
        for &s in g.succs(t) {
            let s = TaskId(s);
            let comm = edge_comm_cost(g, cost, assign, t, s);
            let cand = tl[t.idx()] + g.weight(t) + comm;
            if cand > tl[s.idx()] {
                tl[s.idx()] = cand;
            }
        }
    }
    tl
}

/// Communication cost charged on a dependence edge `(a, b)`: the cost of
/// shipping the objects written by `a` and read by `b`, or 0 when both
/// tasks live on the same processor.
pub fn edge_comm_cost(
    g: &TaskGraph,
    cost: &CostModel,
    assign: Option<&Assignment>,
    a: TaskId,
    b: TaskId,
) -> f64 {
    if let Some(asg) = assign {
        if asg.proc_of(a) == asg.proc_of(b) {
            return 0.0;
        }
    }
    let units = transfer_units(g, a, b);
    if units == 0 {
        // Pure control dependence across processors still pays latency.
        cost.latency
    } else {
        cost.message_cost(units)
    }
}

/// Number of allocation units carried by the message on edge `(a, b)`:
/// total size of objects written by `a` and read by `b`.
pub fn transfer_units(g: &TaskGraph, a: TaskId, b: TaskId) -> u64 {
    let wa = g.writes(a);
    let rb = g.reads(b);
    let mut units = 0u64;
    let (mut i, mut j) = (0, 0);
    while i < wa.len() && j < rb.len() {
        match wa[i].cmp(&rb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                units += g.obj_size(crate::graph::ObjId(wa[i]));
                i += 1;
                j += 1;
            }
        }
    }
    units
}

/// Depth of the DAG: number of tasks on the longest chain.
pub fn dag_depth(g: &TaskGraph) -> usize {
    let order = topo_sort(g).expect("dag_depth requires a DAG");
    let mut depth = vec![1usize; g.num_tasks()];
    let mut best = 0;
    for &t in &order {
        for &s in g.succs(t) {
            depth[s as usize] = depth[s as usize].max(depth[t.idx()] + 1);
        }
        best = best.max(depth[t.idx()]);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraphBuilder;

    fn chain(n: usize) -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let d = b.add_object(1);
        let mut prev = None;
        for _ in 0..n {
            let t = b.add_task(1.0, &[], &[d]);
            if let Some(p) = prev {
                b.add_edge(p, t);
            }
            prev = Some(t);
        }
        b.build().unwrap()
    }

    #[test]
    fn topo_sort_chain() {
        let g = chain(5);
        let order = topo_sort(&g).unwrap();
        assert_eq!(order.iter().map(|t| t.0).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn depth_of_chain() {
        assert_eq!(dag_depth(&chain(7)), 7);
    }

    #[test]
    fn bottom_levels_chain_with_comm() {
        // Two tasks connected by a data-carrying edge; unit cost model
        // charges 1 for the message when no assignment is given.
        let mut b = TaskGraphBuilder::new();
        let d = b.add_object(1);
        let t0 = b.add_task(1.0, &[], &[d]);
        let t1 = b.add_task(1.0, &[d], &[]);
        b.add_edge(t0, t1);
        let g = b.build().unwrap();
        let bl = bottom_levels(&g, &CostModel::unit(), None);
        assert!((bl[t1.idx()] - 1.0).abs() < 1e-12);
        assert!((bl[t0.idx()] - 3.0).abs() < 1e-12); // 1 + comm 1 + 1
        let tl = top_levels(&g, &CostModel::unit(), None);
        assert!((tl[t0.idx()] - 0.0).abs() < 1e-12);
        assert!((tl[t1.idx()] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_bottom_levels_are_bit_identical() {
        use crate::fixtures;
        for seed in 0..6 {
            let spec = fixtures::RandomGraphSpec { objects: 50, tasks: 400, ..Default::default() };
            let g = fixtures::random_irregular_graph(seed, &spec);
            let owner: Vec<_> = (0..g.num_objects()).map(|i| (i % 4) as crate::ProcId).collect();
            let task_proc: Vec<_> = g
                .tasks()
                .map(|t| owner[g.writes(t).first().copied().unwrap_or(0) as usize])
                .collect();
            let assign = Assignment { task_proc, owner, nprocs: 4 };
            let cost = CostModel::unit();
            let seq = bottom_levels(&g, &cost, Some(&assign));
            for k in [1usize, 2, 8] {
                let par = bottom_levels_par(&g, &cost, Some(&assign), k);
                // Bitwise, not approximate: the fold order is identical.
                assert!(
                    seq.iter().zip(&par).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "seed {seed} x{k}"
                );
            }
        }
    }

    #[test]
    fn tarjan_on_cycle_and_dag() {
        // 0 -> 1 -> 2 -> 0 forms one SCC; 3 alone; edge 2 -> 3.
        let lists = vec![vec![1], vec![2], vec![0, 3], vec![]];
        let csr = Csr::from_lists(&lists);
        let (comp, n) = tarjan_scc(&csr);
        assert_eq!(n, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[3]);
        // Edge from the cycle component to node 3's component must go from
        // a smaller id to a larger id.
        assert!(comp[2] < comp[3]);
    }

    #[test]
    fn tarjan_ids_form_topo_order() {
        // Pure DAG: 0->1, 0->2, 1->3, 2->3.
        let lists = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let csr = Csr::from_lists(&lists);
        let (comp, n) = tarjan_scc(&csr);
        assert_eq!(n, 4);
        for (v, row) in lists.iter().enumerate() {
            for &w in row {
                assert!(comp[v] < comp[w as usize], "edge {v}->{w} violates comp order");
            }
        }
    }

    #[test]
    fn ordf64_total_order() {
        let mut v = vec![OrdF64(3.0), OrdF64(1.0), OrdF64(2.0)];
        v.sort();
        assert_eq!(v, vec![OrdF64(1.0), OrdF64(2.0), OrdF64(3.0)]);
        assert!(OrdF64(f64::NEG_INFINITY) < OrdF64(0.0));
    }

    #[test]
    fn transfer_units_counts_written_and_read() {
        let mut b = TaskGraphBuilder::new();
        let d0 = b.add_object(3);
        let d1 = b.add_object(5);
        let t0 = b.add_task(1.0, &[], &[d0, d1]);
        let t1 = b.add_task(1.0, &[d1], &[]);
        b.add_edge(t0, t1);
        let g = b.build().unwrap();
        assert_eq!(transfer_units(&g, t0, t1), 5);
    }
}
