//! Processor assignments, static schedules and the predicted-time Gantt
//! evaluation used by the scheduling heuristics.
//!
//! Paper Definition 1: a static schedule on `p` processors defines an
//! execution order of tasks on each processor, and each data object is
//! assigned to a unique owner processor.

use crate::graph::{ObjId, ProcId, TaskGraph, TaskId};

/// Communication cost model: a message of `n` allocation units costs
/// `latency + n * per_unit` time units. The Cray-T3D preset lives in
/// `rapid-machine`; this type is the machine-independent abstraction the
/// schedulers consume.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Fixed software + wire overhead of one message.
    pub latency: f64,
    /// Incremental cost per allocation unit (one `f64`) transferred.
    pub per_unit: f64,
}

impl CostModel {
    /// The unit model used by the paper's worked example: every message
    /// costs one time unit regardless of size.
    pub fn unit() -> Self {
        CostModel { latency: 1.0, per_unit: 0.0 }
    }

    /// Cost of transferring `units` allocation units.
    #[inline]
    pub fn message_cost(&self, units: u64) -> f64 {
        self.latency + self.per_unit * units as f64
    }
}

/// A mapping of tasks and data objects onto `p` processors.
///
/// Produced by the clustering stage (owner-compute rule or DSC followed by
/// load-balanced cluster mapping, see `rapid-sched`).
#[derive(Clone, Debug)]
pub struct Assignment {
    /// Processor executing each task.
    pub task_proc: Vec<ProcId>,
    /// Owner processor of each data object (Definition 1).
    pub owner: Vec<ProcId>,
    /// Number of processors.
    pub nprocs: usize,
}

impl Assignment {
    /// Processor that executes task `t`.
    #[inline]
    pub fn proc_of(&self, t: TaskId) -> ProcId {
        self.task_proc[t.idx()]
    }

    /// Owner processor of object `d`.
    #[inline]
    pub fn owner_of(&self, d: ObjId) -> ProcId {
        self.owner[d.idx()]
    }

    /// Is `d` a permanent object of processor `p` (Definition 3)?
    #[inline]
    pub fn is_permanent(&self, d: ObjId, p: ProcId) -> bool {
        self.owner[d.idx()] == p
    }

    /// The set `TA(P_x)` for every processor: tasks grouped by processor,
    /// preserving task-id order.
    pub fn tasks_by_proc(&self) -> Vec<Vec<TaskId>> {
        let mut out = vec![Vec::new(); self.nprocs];
        for (i, &p) in self.task_proc.iter().enumerate() {
            out[p as usize].push(TaskId(i as u32));
        }
        out
    }

    /// `DO(P_x)` split into permanent and volatile sets (Definitions 2–3)
    /// for processor `p`, given the graph's access sets. Both sets are
    /// sorted by object id.
    pub fn perm_vola(&self, g: &TaskGraph, p: ProcId) -> (Vec<ObjId>, Vec<ObjId>) {
        let mut touched = vec![false; g.num_objects()];
        for t in g.tasks() {
            if self.proc_of(t) == p {
                for d in g.accesses(t) {
                    touched[d.idx()] = true;
                }
            }
        }
        let mut perm = Vec::new();
        let mut vola = Vec::new();
        for d in g.objects() {
            if self.owner_of(d) == p {
                // Permanent objects stay allocated for the whole run on the
                // owner whether or not a local task touches them.
                perm.push(d);
            } else if touched[d.idx()] {
                vola.push(d);
            }
        }
        (perm, vola)
    }
}

/// A static schedule: an assignment plus a per-processor execution order.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Task/object → processor mapping.
    pub assign: Assignment,
    /// `order[p]` is the execution order of `TA(P_p)`.
    pub order: Vec<Vec<TaskId>>,
}

impl Schedule {
    /// Validate internal consistency: every task appears exactly once, on
    /// the processor the assignment maps it to, and each per-processor
    /// order is consistent with the DAG precedence (i.e. the whole schedule
    /// admits a legal execution). Returns `false` on any violation.
    pub fn is_valid(&self, g: &TaskGraph) -> bool {
        let n = g.num_tasks();
        let mut seen = vec![false; n];
        for (p, ord) in self.order.iter().enumerate() {
            for &t in ord {
                if t.idx() >= n || seen[t.idx()] || self.assign.proc_of(t) != p as ProcId {
                    return false;
                }
                seen[t.idx()] = true;
            }
        }
        if !seen.iter().all(|&s| s) {
            return false;
        }
        // Simulate: repeatedly execute the first unexecuted task of any
        // processor whose predecessors are all done. If we stall, the
        // per-processor orders deadlock against the DAG.
        let mut done = vec![false; n];
        let mut head = vec![0usize; self.order.len()];
        let mut executed = 0;
        loop {
            let mut progressed = false;
            for (p, ord) in self.order.iter().enumerate() {
                while head[p] < ord.len() {
                    let t = ord[head[p]];
                    if g.preds(t).iter().all(|&q| done[q as usize]) {
                        done[t.idx()] = true;
                        head[p] += 1;
                        executed += 1;
                        progressed = true;
                    } else {
                        break;
                    }
                }
            }
            if executed == n {
                return true;
            }
            if !progressed {
                return false;
            }
        }
    }

    /// Position of every task within its processor's order.
    pub fn positions(&self) -> Vec<u32> {
        let n: usize = self.order.iter().map(Vec::len).sum();
        let mut pos = vec![u32::MAX; n];
        for ord in &self.order {
            for (i, &t) in ord.iter().enumerate() {
                pos[t.idx()] = i as u32;
            }
        }
        pos
    }
}

/// One row of a Gantt chart: `(task, start, finish)` triples for a
/// processor, in execution order.
pub type GanttRow = Vec<(TaskId, f64, f64)>;

/// Result of the predicted-time evaluation of a schedule.
#[derive(Clone, Debug)]
pub struct Gantt {
    /// Per-processor `(task, start, finish)` rows.
    pub rows: Vec<GanttRow>,
    /// Predicted parallel time (makespan).
    pub makespan: f64,
}

/// Evaluate the *predicted* parallel time of a schedule under the classic
/// macro-dataflow model: a task starts when its processor is free and all
/// messages from remote predecessors have arrived; messages depart when the
/// producing task finishes and take [`CostModel::message_cost`] time
/// (asynchronous sends, no sender-side occupation — matching the paper's
/// Figure 2 Gantt convention where "the processor overhead for
/// sending/receiving messages is not included").
///
/// This ignores memory constraints entirely; the run-time behaviour with
/// active memory management is modelled by `rapid-rt`'s discrete-event
/// executor.
pub fn evaluate(g: &TaskGraph, cost: &CostModel, sched: &Schedule) -> Gantt {
    let n = g.num_tasks();
    debug_assert!(sched.is_valid(g), "evaluate() called with an invalid schedule");
    let mut finish = vec![f64::INFINITY; n];
    let mut done = vec![false; n];
    let mut head = vec![0usize; sched.order.len()];
    let mut proc_free = vec![0.0f64; sched.order.len()];
    let mut rows: Vec<GanttRow> = vec![Vec::new(); sched.order.len()];
    let mut executed = 0usize;
    while executed < n {
        // Among processors whose next task is ready, fire the one that can
        // start earliest (deterministic tie-break by processor id).
        let mut best: Option<(f64, usize, TaskId)> = None;
        for (p, ord) in sched.order.iter().enumerate() {
            if head[p] >= ord.len() {
                continue;
            }
            let t = ord[head[p]];
            if !g.preds(t).iter().all(|&q| done[q as usize]) {
                continue;
            }
            let mut ready = proc_free[p];
            for &q in g.preds(t) {
                let q = TaskId(q);
                let arrive = if sched.assign.proc_of(q) == p as ProcId {
                    finish[q.idx()]
                } else {
                    finish[q.idx()] + crate::algo::edge_comm_cost(g, cost, None, q, t)
                };
                if arrive > ready {
                    ready = arrive;
                }
            }
            if best.is_none_or(|(s, _, _)| ready < s) {
                best = Some((ready, p, t));
            }
        }
        let (start, p, t) = best.expect("valid schedule cannot stall");
        let end = start + g.weight(t);
        finish[t.idx()] = end;
        done[t.idx()] = true;
        proc_free[p] = end;
        head[p] += 1;
        rows[p].push((t, start, end));
        executed += 1;
    }
    let makespan = rows.iter().flat_map(|r| r.iter().map(|&(_, _, f)| f)).fold(0.0f64, f64::max);
    Gantt { rows, makespan }
}

impl Gantt {
    /// Render the chart as fixed-width ASCII art, one row per processor,
    /// `width` characters across. Task cells show the first letter of the
    /// task's label (or `#`); idle time is `.`. Intended for small worked
    /// examples like the paper's Figure 2.
    pub fn render_ascii(&self, g: &TaskGraph, width: usize) -> String {
        let width = width.max(10);
        let scale = self.makespan / width as f64;
        let mut out = String::new();
        for (p, row) in self.rows.iter().enumerate() {
            let mut line = vec![b'.'; width];
            for &(t, s, f) in row {
                let a = ((s / scale) as usize).min(width - 1);
                let b = ((f / scale).ceil() as usize).clamp(a + 1, width);
                let label = g.task_label(t);
                let ch = label
                    .trim_start_matches("T[")
                    .bytes()
                    .next()
                    .filter(|c| c.is_ascii_graphic())
                    .unwrap_or(b'#');
                for c in &mut line[a..b] {
                    *c = ch;
                }
            }
            out.push_str(&format!("P{p} |{}|\n", String::from_utf8_lossy(&line)));
        }
        out.push_str(&format!("     0{:>w$.1}\n", self.makespan, w = width - 1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraphBuilder;

    fn fork_join() -> (TaskGraph, Assignment) {
        // t0 -> {t1, t2} -> t3, each writing its own object.
        let mut b = TaskGraphBuilder::new();
        let d: Vec<_> = (0..4).map(|_| b.add_object(1)).collect();
        let t0 = b.add_task(1.0, &[], &[d[0]]);
        let t1 = b.add_task(1.0, &[d[0]], &[d[1]]);
        let t2 = b.add_task(1.0, &[d[0]], &[d[2]]);
        let t3 = b.add_task(1.0, &[d[1], d[2]], &[d[3]]);
        b.add_edge(t0, t1);
        b.add_edge(t0, t2);
        b.add_edge(t1, t3);
        b.add_edge(t2, t3);
        let g = b.build().unwrap();
        let assign = Assignment { task_proc: vec![0, 0, 1, 0], owner: vec![0, 0, 1, 0], nprocs: 2 };
        (g, assign)
    }

    #[test]
    fn gantt_fork_join() {
        let (g, assign) = fork_join();
        let sched = Schedule {
            assign,
            order: vec![vec![TaskId(0), TaskId(1), TaskId(3)], vec![TaskId(2)]],
        };
        assert!(sched.is_valid(&g));
        let gantt = evaluate(&g, &CostModel::unit(), &sched);
        // t0: [0,1]; t1 on P0: [1,2]; t2 on P1 waits for message: starts at
        // 1+1=2, ends 3; t3 needs t2's data (+1 comm): starts 4, ends 5.
        assert!((gantt.makespan - 5.0).abs() < 1e-9);
        assert_eq!(gantt.rows[0].len(), 3);
        assert_eq!(gantt.rows[1].len(), 1);
        assert!((gantt.rows[1][0].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gantt_ascii_renders_all_rows() {
        let (g, assign) = fork_join();
        let sched = Schedule {
            assign,
            order: vec![vec![TaskId(0), TaskId(1), TaskId(3)], vec![TaskId(2)]],
        };
        let gantt = evaluate(&g, &CostModel::unit(), &sched);
        let art = gantt.render_ascii(&g, 40);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3, "two proc rows + axis:\n{art}");
        assert!(lines[0].starts_with("P0 |"));
        assert!(lines[1].starts_with("P1 |"));
        // P1 idles before its task: leading dots.
        assert!(lines[1].contains('.'));
        // All rows equal width.
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    fn invalid_schedules_detected() {
        let (g, assign) = fork_join();
        // Missing task.
        let s = Schedule {
            assign: assign.clone(),
            order: vec![vec![TaskId(0), TaskId(1)], vec![TaskId(2)]],
        };
        assert!(!s.is_valid(&g));
        // Order violates precedence on P0 (t3 before t1 stalls t3 forever:
        // t3 waits for t1 which is behind it on the same processor).
        let s = Schedule {
            assign,
            order: vec![vec![TaskId(0), TaskId(3), TaskId(1)], vec![TaskId(2)]],
        };
        assert!(!s.is_valid(&g));
    }

    #[test]
    fn perm_vola_partition() {
        let (g, assign) = fork_join();
        let (perm0, vola0) = assign.perm_vola(&g, 0);
        // P0 owns d0, d1, d3. Its tasks read d2 (t3 reads d1, d2).
        assert_eq!(perm0.iter().map(|d| d.0).collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!(vola0.iter().map(|d| d.0).collect::<Vec<_>>(), vec![2]);
        let (perm1, vola1) = assign.perm_vola(&g, 1);
        assert_eq!(perm1.iter().map(|d| d.0).collect::<Vec<_>>(), vec![2]);
        // P1 runs t2 which reads d0.
        assert_eq!(vola1.iter().map(|d| d.0).collect::<Vec<_>>(), vec![0]);
    }
}
