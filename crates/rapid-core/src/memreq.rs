//! Memory-requirement analysis: `MEM_REQ`, `MIN_MEM` (paper Definitions
//! 5–6) and the memory metrics used throughout the evaluation (the `TOT`
//! baseline of §5.1, the memory-scalability ratio of §5.2, and the Table-1
//! usage-over-`S1/p` ratio).

use crate::graph::TaskGraph;
use crate::liveness::Liveness;
use crate::schedule::Schedule;

/// Memory analysis of one schedule.
#[derive(Clone, Debug)]
pub struct MemReport {
    /// Total size of permanent objects per processor.
    pub perm: Vec<u64>,
    /// Total size of volatile objects per processor (the space the original
    /// RAPID allocates up front, with no recycling).
    pub vola_total: Vec<u64>,
    /// Peak of `MEM_REQ(T, P)` over the tasks of each processor
    /// (Definition 5), i.e. the space needed *with* ideal recycling.
    pub peak: Vec<u64>,
    /// `MIN_MEM`: max over processors of `peak` (Definition 6).
    pub min_mem: u64,
    /// `TOT` (§5.1): max over processors of `perm + vola_total` — the
    /// space needed for the schedule without any recycling.
    pub tot_no_recycle: u64,
    /// Sequential space requirement `S1` (sum of all object sizes).
    pub s1: u64,
}

impl MemReport {
    /// Per-processor space with no recycling: `perm[p] + vola_total[p]`.
    pub fn no_recycle(&self, p: usize) -> u64 {
        self.perm[p] + self.vola_total[p]
    }

    /// Table-1 metric: average over processors of
    /// `(perm + vola_total) / (S1 / p)`.
    pub fn avg_usage_ratio(&self) -> f64 {
        let p = self.perm.len();
        let ideal = self.s1 as f64 / p as f64;
        let sum: f64 = (0..p).map(|x| self.no_recycle(x) as f64 / ideal).sum();
        sum / p as f64
    }

    /// Memory scalability of §5.2: `S1 / S_p^A` where `S_p^A` is the per
    /// processor requirement (peak with recycling).
    pub fn scalability(&self) -> f64 {
        if self.min_mem == 0 {
            return f64::INFINITY;
        }
        self.s1 as f64 / self.min_mem as f64
    }

    /// Is the schedule executable when each processor has `capacity`
    /// allocation units (Definition 6)?
    pub fn executable_under(&self, capacity: u64) -> bool {
        self.min_mem <= capacity
    }
}

/// Compute the memory report of a schedule.
///
/// The peak follows Definition 5: at every task `T_w` of processor `P_x`,
/// `MEM_REQ(T_w, P_x)` is the full permanent size of `P_x` plus the sizes of
/// volatile objects alive at `T_w` (Definition 4). The sweep allocates each
/// volatile at its first local use and frees it right after its last use.
pub fn min_mem(g: &TaskGraph, sched: &Schedule) -> MemReport {
    let lv = Liveness::analyze(g, sched);
    min_mem_with(g, sched, &lv)
}

/// Same as [`min_mem`] but reusing an existing liveness analysis.
pub fn min_mem_with(g: &TaskGraph, sched: &Schedule, lv: &Liveness) -> MemReport {
    let nprocs = sched.order.len();
    let mut perm = vec![0u64; nprocs];
    for d in g.objects() {
        perm[sched.assign.owner_of(d) as usize] += g.obj_size(d);
    }
    let mut vola_total = vec![0u64; nprocs];
    let mut peak = vec![0u64; nprocs];
    for p in 0..nprocs {
        let pl = &lv.procs[p];
        vola_total[p] = pl.volatile.iter().map(|&d| g.obj_size(d)).sum();
        let mut cur = perm[p];
        let mut pk = cur; // a processor with no tasks still holds its permanents
        for i in 0..sched.order[p].len() {
            for &d in &pl.first_use[i] {
                cur += g.obj_size(d);
            }
            if cur > pk {
                pk = cur;
            }
            for &d in &pl.dead_after[i] {
                cur -= g.obj_size(d);
            }
        }
        peak[p] = pk;
    }
    let min_mem = peak.iter().copied().max().unwrap_or(0);
    let tot_no_recycle = (0..nprocs).map(|p| perm[p] + vola_total[p]).max().unwrap_or(0);
    MemReport { perm, vola_total, peak, min_mem, tot_no_recycle, s1: g.seq_space() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn figure2_schedule_b_numbers() {
        // Paper §3.2: for Figure 2(b), MEM_REQ(T[d8,d9], P0) = 7,
        // MEM_REQ(T[d7,d8], P1) = 9 and MIN_MEM = 9.
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_b();
        let rep = min_mem(&g, &sched);
        assert_eq!(rep.perm[0], 6);
        assert_eq!(rep.perm[1], 5);
        assert_eq!(rep.peak[0], 7);
        assert_eq!(rep.peak[1], 9);
        assert_eq!(rep.min_mem, 9);
        assert_eq!(rep.s1, 11);
    }

    #[test]
    fn figure2_schedule_c_numbers() {
        // Paper §3.2: for Figure 2(c) MIN_MEM = 8 because the lifetimes of
        // volatiles d7 and d3 are disjoint on P1.
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let rep = min_mem(&g, &sched);
        assert_eq!(rep.min_mem, 8);
        assert!(rep.executable_under(8));
        assert!(!rep.executable_under(7));
    }

    #[test]
    fn no_recycle_tot_dominates_peak() {
        let g = fixtures::figure2_dag();
        for sched in [fixtures::figure2_schedule_b(), fixtures::figure2_schedule_c()] {
            let rep = min_mem(&g, &sched);
            assert!(rep.tot_no_recycle >= rep.min_mem);
            // P1 holds 5 permanents + 4 volatiles = 9 with no recycling.
            assert_eq!(rep.tot_no_recycle, 9);
        }
    }

    #[test]
    fn scalability_and_ratio_metrics() {
        let g = fixtures::figure2_dag();
        let rep = min_mem(&g, &fixtures::figure2_schedule_c());
        // S1 = 11, MIN_MEM = 8.
        assert!((rep.scalability() - 11.0 / 8.0).abs() < 1e-12);
        // Average no-recycle usage over S1/p = ((7/5.5) + (9/5.5)) / 2.
        let expect = ((7.0 / 5.5) + (9.0 / 5.5)) / 2.0;
        assert!((rep.avg_usage_ratio() - expect).abs() < 1e-12);
    }
}
