//! Memory-requirement analysis: `MEM_REQ`, `MIN_MEM` (paper Definitions
//! 5–6) and the memory metrics used throughout the evaluation (the `TOT`
//! baseline of §5.1, the memory-scalability ratio of §5.2, and the Table-1
//! usage-over-`S1/p` ratio).

use crate::graph::{ObjId, TaskGraph};
use crate::liveness::Liveness;
use crate::schedule::Schedule;

/// Memory analysis of one schedule.
#[derive(Clone, Debug)]
pub struct MemReport {
    /// Total size of permanent objects per processor.
    pub perm: Vec<u64>,
    /// Total size of volatile objects per processor (the space the original
    /// RAPID allocates up front, with no recycling).
    pub vola_total: Vec<u64>,
    /// Peak of `MEM_REQ(T, P)` over the tasks of each processor
    /// (Definition 5), i.e. the space needed *with* ideal recycling.
    pub peak: Vec<u64>,
    /// `MIN_MEM`: max over processors of `peak` (Definition 6).
    pub min_mem: u64,
    /// `TOT` (§5.1): max over processors of `perm + vola_total` — the
    /// space needed for the schedule without any recycling.
    pub tot_no_recycle: u64,
    /// Sequential space requirement `S1` (sum of all object sizes).
    pub s1: u64,
}

impl MemReport {
    /// Per-processor space with no recycling: `perm[p] + vola_total[p]`.
    pub fn no_recycle(&self, p: usize) -> u64 {
        self.perm[p] + self.vola_total[p]
    }

    /// Table-1 metric: average over processors of
    /// `(perm + vola_total) / (S1 / p)`.
    pub fn avg_usage_ratio(&self) -> f64 {
        let p = self.perm.len();
        let ideal = self.s1 as f64 / p as f64;
        let sum: f64 = (0..p).map(|x| self.no_recycle(x) as f64 / ideal).sum();
        sum / p as f64
    }

    /// Memory scalability of §5.2: `S1 / S_p^A` where `S_p^A` is the per
    /// processor requirement (peak with recycling).
    pub fn scalability(&self) -> f64 {
        if self.min_mem == 0 {
            return f64::INFINITY;
        }
        self.s1 as f64 / self.min_mem as f64
    }

    /// Is the schedule executable when each processor has `capacity`
    /// allocation units (Definition 6)?
    pub fn executable_under(&self, capacity: u64) -> bool {
        self.min_mem <= capacity
    }

    /// Per-MAP-window peak analysis for this schedule under `capacity`
    /// (see [`window_peaks`]). Convenience wrapper; the report itself is
    /// independent of the fields of `self`.
    pub fn window_peaks(
        &self,
        g: &TaskGraph,
        sched: &Schedule,
        capacity: u64,
    ) -> Result<WindowReport, InfeasibleWindow> {
        window_peaks(g, sched, capacity)
    }
}

/// Compute the memory report of a schedule.
///
/// The peak follows Definition 5: at every task `T_w` of processor `P_x`,
/// `MEM_REQ(T_w, P_x)` is the full permanent size of `P_x` plus the sizes of
/// volatile objects alive at `T_w` (Definition 4). The sweep allocates each
/// volatile at its first local use and frees it right after its last use.
pub fn min_mem(g: &TaskGraph, sched: &Schedule) -> MemReport {
    let lv = Liveness::analyze(g, sched);
    min_mem_with(g, sched, &lv)
}

/// Same as [`min_mem`] but reusing an existing liveness analysis.
pub fn min_mem_with(g: &TaskGraph, sched: &Schedule, lv: &Liveness) -> MemReport {
    let nprocs = sched.order.len();
    let mut perm = vec![0u64; nprocs];
    for d in g.objects() {
        perm[sched.assign.owner_of(d) as usize] += g.obj_size(d);
    }
    let mut vola_total = vec![0u64; nprocs];
    let mut peak = vec![0u64; nprocs];
    for p in 0..nprocs {
        let pl = &lv.procs[p];
        vola_total[p] = pl.volatile.iter().map(|&d| g.obj_size(d)).sum();
        let mut cur = perm[p];
        let mut pk = cur; // a processor with no tasks still holds its permanents
        for i in 0..sched.order[p].len() {
            for &d in &pl.first_use[i] {
                cur += g.obj_size(d);
            }
            if cur > pk {
                pk = cur;
            }
            for &d in &pl.dead_after[i] {
                cur -= g.obj_size(d);
            }
        }
        peak[p] = pk;
    }
    let min_mem = peak.iter().copied().max().unwrap_or(0);
    let tot_no_recycle = (0..nprocs).map(|p| perm[p] + vola_total[p]).max().unwrap_or(0);
    MemReport { perm, vola_total, peak, min_mem, tot_no_recycle, s1: g.seq_space() }
}

/// One greedy MAP window of a processor's order, with its predicted arena
/// occupancy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowPeak {
    /// Order position the MAP precedes (frees happen here).
    pub pos: u32,
    /// Exclusive end of the window: the next MAP goes right before this
    /// position (`order.len()` for the last window).
    pub next_map: u32,
    /// Units in use after the window's allocations. Occupancy is
    /// monotone within a window (frees happen only at window starts), so
    /// this *is* the window's high-water mark.
    pub peak: u64,
}

/// Per-MAP-window peak analysis: the *achievable-at-MAPs* counterpart of
/// the ideal-recycling Definition-5 peak. See [`window_peaks`].
#[derive(Clone, Debug)]
pub struct WindowReport {
    /// Greedy MAP windows per processor. A processor with an empty order
    /// still gets one (empty) window, matching the managed executors.
    pub windows: Vec<Vec<WindowPeak>>,
    /// Per-processor high-water under this placement: the maximum window
    /// peak (at least the permanent size, for processors with no tasks).
    pub peak: Vec<u64>,
    /// Static `MIN_MEM`-under-MAPs: the smallest capacity for which the
    /// greedy placement succeeds on every processor. For greedy windows
    /// this *equals* Definition-6 [`MemReport::min_mem`]: a MAP fails only
    /// on its immediate task, whose requirement after the free wave is
    /// exactly `MEM_REQ(T, P)` (the in-use set at a window start is the
    /// Definition-4 live set), and a window can never extend past a
    /// position whose `MEM_REQ` exceeds the capacity — so the first MAP at
    /// the peak position is the binding constraint.
    pub min_mem_at_maps: u64,
}

/// First greedy MAP window that cannot be provisioned under a capacity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InfeasibleWindow {
    /// Processor whose MAP failed.
    pub proc: usize,
    /// Order position of the task that could not be provisioned.
    pub position: u32,
    /// Units that would be in use simultaneously.
    pub needed: u64,
    /// The per-processor capacity.
    pub capacity: u64,
    /// Volatile objects live across the failing MAP (allocated before it
    /// and not freed by its free wave), sorted by id. Together with the
    /// permanents and the task's own first uses these make up `needed`.
    pub live: Vec<ObjId>,
}

impl std::fmt::Display for InfeasibleWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P{} task #{} needs {} units, capacity {} (live volatiles: {:?})",
            self.proc, self.position, self.needed, self.capacity, self.live
        )
    }
}

/// Compute the greedy MAP windows of `sched` under `capacity` and the
/// exact arena occupancy of each window.
///
/// The sweep replays the paper's §3.3 allocation policy per processor: a
/// MAP at position `pos` first frees every volatile whose last use is
/// strictly before `pos`, then allocates the first uses of `pos`,
/// `pos+1`, … until the next task's objects no longer fit; the window
/// fails ([`InfeasibleWindow`]) iff the task at `pos` itself cannot be
/// provisioned (the `∞` entries of Definition 6).
///
/// Two different "peaks" come out of this analysis, and the distinction
/// matters for sizing the arena:
///
/// * the **ideal-recycling peak** of Definition 5 ([`MemReport::peak`])
///   frees each volatile immediately after its last use — it is the
///   occupancy lower bound of *any* MAP placement, and its max over
///   processors ([`MemReport::min_mem`]) is the feasibility threshold;
/// * the **achievable-at-MAPs peak** ([`WindowReport::peak`]) accounts
///   for the greedy window's lookahead allocation and for frees deferred
///   to window starts — between MAPs it can sit well above the
///   Definition-5 curve (the slack is what buys fewer MAPs and fewer
///   address packages).
///
/// The feasibility *thresholds* nevertheless coincide (see
/// [`WindowReport::min_mem_at_maps`]): lowering the capacity towards
/// `min_mem` shrinks the windows, and the placement only becomes
/// infeasible one unit below it.
pub fn window_peaks(
    g: &TaskGraph,
    sched: &Schedule,
    capacity: u64,
) -> Result<WindowReport, InfeasibleWindow> {
    let lv = Liveness::analyze(g, sched);
    window_peaks_with(g, sched, &lv, capacity)
}

/// Same as [`window_peaks`] but reusing an existing liveness analysis.
pub fn window_peaks_with(
    g: &TaskGraph,
    sched: &Schedule,
    lv: &Liveness,
    capacity: u64,
) -> Result<WindowReport, InfeasibleWindow> {
    let nprocs = sched.order.len();
    let mut perm = vec![0u64; nprocs];
    for d in g.objects() {
        perm[sched.assign.owner_of(d) as usize] += g.obj_size(d);
    }
    let mut windows = Vec::with_capacity(nprocs);
    let mut peak = Vec::with_capacity(nprocs);
    for (p, &pu) in perm.iter().enumerate() {
        let pl = &lv.procs[p];
        let order_len = sched.order[p].len();
        let mut allocated: Vec<ObjId> = Vec::new();
        let mut in_use = pu;
        let mut pk = in_use;
        let mut rows = Vec::new();
        let mut pos = 0u32;
        // A processor with an empty order still performs one (empty) MAP
        // before terminating, exactly like the managed executors.
        loop {
            // Free wave: drop volatiles dead strictly before `pos`.
            allocated.retain(|&d| {
                let Ok(k) = pl.volatile.binary_search(&d) else {
                    return true;
                };
                if pl.volatile_span[k].1 < pos {
                    in_use -= g.obj_size(d);
                    false
                } else {
                    true
                }
            });
            // Greedy window: allocate first uses until the next task's
            // objects no longer fit.
            let mut next_map = pos;
            for j in pos as usize..order_len {
                let add: u64 = pl.first_use[j]
                    .iter()
                    .filter(|d| allocated.binary_search(d).is_err())
                    .map(|&d| g.obj_size(d))
                    .sum();
                if in_use + add > capacity {
                    if j as u32 == pos {
                        return Err(InfeasibleWindow {
                            proc: p,
                            position: pos,
                            needed: in_use + add,
                            capacity,
                            live: allocated,
                        });
                    }
                    break;
                }
                for &d in &pl.first_use[j] {
                    let k = allocated.partition_point(|&x| x < d);
                    if allocated.get(k) != Some(&d) {
                        allocated.insert(k, d);
                    }
                }
                in_use += add;
                pk = pk.max(in_use);
                next_map = j as u32 + 1;
            }
            rows.push(WindowPeak { pos, next_map, peak: in_use });
            pos = next_map;
            if pos as usize >= order_len {
                break;
            }
        }
        windows.push(rows);
        peak.push(pk);
    }
    let min_mem_at_maps = min_mem_with(g, sched, lv).min_mem;
    Ok(WindowReport { windows, peak, min_mem_at_maps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn figure2_schedule_b_numbers() {
        // Paper §3.2: for Figure 2(b), MEM_REQ(T[d8,d9], P0) = 7,
        // MEM_REQ(T[d7,d8], P1) = 9 and MIN_MEM = 9.
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_b();
        let rep = min_mem(&g, &sched);
        assert_eq!(rep.perm[0], 6);
        assert_eq!(rep.perm[1], 5);
        assert_eq!(rep.peak[0], 7);
        assert_eq!(rep.peak[1], 9);
        assert_eq!(rep.min_mem, 9);
        assert_eq!(rep.s1, 11);
    }

    #[test]
    fn figure2_schedule_c_numbers() {
        // Paper §3.2: for Figure 2(c) MIN_MEM = 8 because the lifetimes of
        // volatiles d7 and d3 are disjoint on P1.
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let rep = min_mem(&g, &sched);
        assert_eq!(rep.min_mem, 8);
        assert!(rep.executable_under(8));
        assert!(!rep.executable_under(7));
    }

    #[test]
    fn no_recycle_tot_dominates_peak() {
        let g = fixtures::figure2_dag();
        for sched in [fixtures::figure2_schedule_b(), fixtures::figure2_schedule_c()] {
            let rep = min_mem(&g, &sched);
            assert!(rep.tot_no_recycle >= rep.min_mem);
            // P1 holds 5 permanents + 4 volatiles = 9 with no recycling.
            assert_eq!(rep.tot_no_recycle, 9);
        }
    }

    #[test]
    fn window_peaks_match_min_mem_threshold() {
        let g = fixtures::figure2_dag();
        for sched in [fixtures::figure2_schedule_b(), fixtures::figure2_schedule_c()] {
            let rep = min_mem(&g, &sched);
            // Feasible at exactly MIN_MEM…
            let wr = window_peaks(&g, &sched, rep.min_mem).expect("feasible at MIN_MEM");
            assert_eq!(wr.min_mem_at_maps, rep.min_mem);
            for p in 0..2 {
                assert!(wr.peak[p] <= rep.min_mem);
                assert!(wr.peak[p] >= rep.peak[p], "window peak below ideal-recycling peak");
                // Windows tile the order contiguously.
                let mut pos = 0u32;
                for w in &wr.windows[p] {
                    assert_eq!(w.pos, pos);
                    assert!(w.next_map > pos || sched.order[p].is_empty());
                    assert!(w.peak <= rep.min_mem);
                    pos = w.next_map;
                }
                assert_eq!(pos as usize, sched.order[p].len());
                assert_eq!(wr.peak[p], wr.windows[p].iter().map(|w| w.peak).max().unwrap());
            }
            // …and infeasible one unit below, with the live set reported.
            let err = window_peaks(&g, &sched, rep.min_mem - 1).unwrap_err();
            assert_eq!(err.capacity, rep.min_mem - 1);
            assert_eq!(err.needed, rep.min_mem);
            assert!(err.needed > err.capacity);
        }
    }

    #[test]
    fn ample_capacity_gives_one_window_per_proc() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let wr = window_peaks(&g, &sched, 1000).unwrap();
        for p in 0..2 {
            assert_eq!(wr.windows[p].len(), 1);
            // One window never frees: its peak is perm + all volatiles.
            let rep = min_mem(&g, &sched);
            assert_eq!(wr.peak[p], rep.no_recycle(p));
        }
    }

    #[test]
    fn min_mem_unchanged_by_window_analysis() {
        // The satellite contract: adding window peaks must keep the
        // Definition-6 numbers bit-identical (paper §3.2 values).
        let g = fixtures::figure2_dag();
        assert_eq!(min_mem(&g, &fixtures::figure2_schedule_b()).min_mem, 9);
        assert_eq!(min_mem(&g, &fixtures::figure2_schedule_c()).min_mem, 8);
    }

    #[test]
    fn scalability_and_ratio_metrics() {
        let g = fixtures::figure2_dag();
        let rep = min_mem(&g, &fixtures::figure2_schedule_c());
        // S1 = 11, MIN_MEM = 8.
        assert!((rep.scalability() - 11.0 / 8.0).abs() < 1e-12);
        // Average no-recycle usage over S1/p = ((7/5.5) + (9/5.5)) / 2.
        let expect = ((7.0 / 5.5) + (9.0 / 5.5)) / 2.0;
        assert!((rep.avg_usage_ratio() - expect).abs() < 1e-12);
    }
}
