//! Core task-parallelism model for the RAPID reproduction (Fu & Yang,
//! PPoPP '97).
//!
//! The computation model (paper §2) consists of a set of *tasks* and a set
//! of distinct *data objects*. Each task reads/writes a subset of the data
//! objects, and the interaction among tasks is a transformed task-dependence
//! graph containing true dependencies only (a DAG). Each data object is
//! assigned to a unique *owner* processor; on a processor `P`, an object it
//! owns is *permanent* and any other object accessed by `P`'s tasks is
//! *volatile* (Definitions 1–3).
//!
//! This crate provides:
//!
//! - [`graph`] — the index-based task graph ([`graph::TaskGraph`]) and its
//!   builder,
//! - [`algo`] — reusable graph algorithms (topological sort, Tarjan SCC,
//!   critical-path levels),
//! - [`ddg`] — classification of true/anti/output dependencies from
//!   sequential access traces and the transformation to a true-only DAG,
//! - [`schedule`] — processor assignments, per-processor task orders and the
//!   predicted-time Gantt evaluation,
//! - [`liveness`] — volatile-object lifetime analysis (Definition 4),
//! - [`memreq`] — `MEM_REQ` / `MIN_MEM` (Definitions 5–6) and memory
//!   scalability metrics,
//! - [`dcg`] — the data connection graph and slice construction used by the
//!   DTS ordering (paper §4.2),
//! - [`par`] — std-only scoped-thread fork/join helpers backing the
//!   parallel planning front-end (shard-deterministic merges),
//! - [`fixtures`] — the worked example of Figure 2 plus random-graph
//!   generators used across the workspace's tests and benches.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod algo;
pub mod dcg;
pub mod ddg;
pub mod fixtures;
pub mod graph;
pub mod liveness;
pub mod memreq;
pub mod par;
pub mod schedule;

pub use graph::{ObjId, ProcId, TaskGraph, TaskGraphBuilder, TaskId};
pub use schedule::{Assignment, CostModel, Schedule};
