//! Shared fixtures: the worked example of the paper's Figure 2 and
//! deterministic random-graph generators used by tests and benches across
//! the workspace.
//!
//! ## The Figure 2 reconstruction
//!
//! The paper shows (but does not list edge-by-edge) a DAG with 20 tasks and
//! 11 data objects `d1..d11`, a cyclic object mapping on two processors and
//! owner-compute task clustering. The reconstruction here satisfies every
//! fact the text states:
//!
//! - `PERM(P0) = {d1,d3,d5,d7,d9,d11}`, `PERM(P1) = {d2,d4,d6,d8,d10}`,
//!   `VOLA(P0) = {d8}`, `VOLA(P1) = {d1,d3,d5,d7}`;
//! - tasks `T[3,10]`, `T[5,10]`, `T[7,8]`, `T[8]`, `T[8,9]` exist with the
//!   stated read/write sets, and the path `T[7,8] -> T[8] -> T[8,9]` has
//!   bottom level 4 under unit costs (one message delay included);
//! - for schedule (b) (the RCP-style order): `MEM_REQ(T[8,9], P0) = 7`,
//!   `MEM_REQ(T[7,8], P1) = 9`, `MIN_MEM = 9`, and on `P1` volatile `d3`
//!   dies after `T[3,10]` and `d5` after `T[5,10]`;
//! - for schedule (c) (the MPO-style order): `MIN_MEM = 8`, and the
//!   lifetimes of volatiles `d7` and `d3` are disjoint on `P1`;
//! - the DCG (Figure 5(a)) has exactly the seven nodes
//!   `d1,d3,d4,d5,d7,d8,d2`, is acyclic, and
//!   `d1 -> d3 -> d4 -> d5 -> d7 -> d8 -> d2` is a valid topological order;
//!   the DTS schedule has `MIN_MEM = 7`.

use crate::graph::{ObjId, TaskGraph, TaskGraphBuilder, TaskId};
use crate::schedule::{Assignment, Schedule};

/// Object id for the paper's name `d<i>` (1-based): `obj(1)` is `d1`.
pub fn obj(i: u32) -> ObjId {
    assert!(i >= 1);
    ObjId(i - 1)
}

/// Build the 20-task, 11-object DAG of Figure 2(a).
///
/// Task labels follow the paper's notation: `T[i,j]` reads `d_i` and
/// updates `d_j`; `T[j]` updates `d_j`.
pub fn figure2_dag() -> TaskGraph {
    let mut b = TaskGraphBuilder::new();
    for _ in 0..11 {
        b.add_object(1);
    }
    let t = |b: &mut TaskGraphBuilder, label: &str, r: Option<u32>, w: u32| -> TaskId {
        let reads: Vec<ObjId> = r.map(obj).into_iter().collect();
        b.add_task_labeled(label.to_string(), 1.0, &reads, &[obj(w)])
    };
    // P0 tasks (owner-compute on odd objects).
    let a1 = t(&mut b, "T[1]", None, 1);
    let a2 = t(&mut b, "T[3]", None, 3);
    let a3 = t(&mut b, "T[5]", None, 5);
    let a4 = t(&mut b, "T[1,7]", Some(1), 7);
    let a5 = t(&mut b, "T[8,9]", Some(8), 9);
    let a6 = t(&mut b, "T[8,11]", Some(8), 11);
    // P1 tasks (even objects).
    let b1 = t(&mut b, "T[1,2]", Some(1), 2);
    let b2 = t(&mut b, "T[1,4]", Some(1), 4);
    let b3 = t(&mut b, "T[3,4]", Some(3), 4);
    let b4 = t(&mut b, "T[3,10]", Some(3), 10);
    let b5 = t(&mut b, "T[4,6]", Some(4), 6);
    let b6 = t(&mut b, "T[5,6]", Some(5), 6);
    let b7 = t(&mut b, "T[5,10]", Some(5), 10);
    let b8 = t(&mut b, "T[7,8]", Some(7), 8);
    let b9 = t(&mut b, "T[8]", None, 8);
    let b10 = t(&mut b, "T[7,10]", Some(7), 10);
    let b11 = t(&mut b, "T[2,10]", Some(2), 10);
    let b12 = t(&mut b, "T[2,6]", Some(2), 6);
    let b13 = t(&mut b, "T[4,2]", Some(4), 2);
    let b14 = t(&mut b, "T[4,10]", Some(4), 10);

    // True dependencies: writer -> readers.
    for (w, rs) in [
        (a1, vec![a4, b1, b2]), // d1
        (a2, vec![b3, b4]),     // d3
        (a3, vec![b6, b7]),     // d5
        (a4, vec![b8, b10]),    // d7
    ] {
        for r in rs {
            b.add_edge(w, r);
        }
    }
    // d4: update chain b2 -> b3, readers after the final update.
    b.add_edge(b2, b3);
    for r in [b5, b13, b14] {
        b.add_edge(b3, r);
    }
    // d2: update chain b1 -> b13, readers after.
    b.add_edge(b1, b13);
    for r in [b11, b12] {
        b.add_edge(b13, r);
    }
    // d8: update chain b8 -> b9, readers after.
    b.add_edge(b8, b9);
    b.add_edge(b9, a5);
    b.add_edge(b9, a6);
    // d6: update chain b5 -> b6 -> b12.
    b.add_edge(b5, b6);
    b.add_edge(b6, b12);
    // d10: update chain b4 -> b14 -> b7 -> b10 -> b11.
    b.add_edge(b4, b14);
    b.add_edge(b14, b7);
    b.add_edge(b7, b10);
    b.add_edge(b10, b11);

    let g = b.build().expect("figure 2 DAG is well-formed");
    debug_assert_eq!(g.num_tasks(), 20);
    debug_assert_eq!(g.num_objects(), 11);
    g
}

/// Cyclic owner map of Figure 2: the owner of `d_i` is `(i-1) mod p`.
pub fn figure2_owner_map(p: u32) -> Vec<u32> {
    (0..11).map(|j| j % p).collect()
}

/// Owner-compute assignment of the Figure 2 example on two processors.
pub fn figure2_assignment() -> Assignment {
    let g = figure2_dag();
    let owner = figure2_owner_map(2);
    let task_proc = g.tasks().map(|t| owner[g.writes(t)[0] as usize]).collect();
    Assignment { task_proc, owner, nprocs: 2 }
}

/// Find a Figure-2 task by its paper label, e.g. `"T[3,10]"`.
pub fn figure2_task(g: &TaskGraph, label: &str) -> TaskId {
    g.tasks()
        .find(|&t| g.task_label(t) == label)
        .unwrap_or_else(|| panic!("no task labeled {label}"))
}

fn sched_from_labels(p0: &[&str], p1: &[&str]) -> Schedule {
    let g = figure2_dag();
    let assign = figure2_assignment();
    let order = vec![
        p0.iter().map(|l| figure2_task(&g, l)).collect(),
        p1.iter().map(|l| figure2_task(&g, l)).collect(),
    ];
    let s = Schedule { assign, order };
    debug_assert!(s.is_valid(&g));
    s
}

/// The RCP-style schedule of Figure 2(b): `MIN_MEM = 9`; on `P1`, `T[7,8]`
/// runs while all four volatiles are alive.
pub fn figure2_schedule_b() -> Schedule {
    sched_from_labels(
        &["T[1]", "T[3]", "T[5]", "T[1,7]", "T[8,9]", "T[8,11]"],
        &[
            "T[1,4]", "T[3,4]", "T[4,6]", "T[5,6]", "T[7,8]", "T[1,2]", "T[3,10]", "T[4,10]",
            "T[5,10]", "T[7,10]", "T[8]", "T[4,2]", "T[2,10]", "T[2,6]",
        ],
    )
}

/// The MPO-style schedule of Figure 2(c): `MIN_MEM = 8`; volatiles `d3` and
/// `d7` have disjoint lifetimes on `P1`.
pub fn figure2_schedule_c() -> Schedule {
    sched_from_labels(
        &["T[1]", "T[3]", "T[5]", "T[1,7]", "T[8,9]", "T[8,11]"],
        &[
            "T[1,4]", "T[3,4]", "T[4,6]", "T[5,6]", "T[3,10]", "T[1,2]", "T[4,10]", "T[5,10]",
            "T[7,8]", "T[7,10]", "T[8]", "T[4,2]", "T[2,10]", "T[2,6]",
        ],
    )
}

// ---------------------------------------------------------------------------
// Deterministic random DAG generation (no external RNG dependency).
// ---------------------------------------------------------------------------

/// SplitMix64: tiny, deterministic, high-quality 64-bit generator. Used so
/// that core fixtures stay dependency-free and fully reproducible.
#[derive(Clone, Debug)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift reduction (Lemire); bias is negligible here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Parameters for [`random_irregular_graph`].
#[derive(Clone, Debug)]
pub struct RandomGraphSpec {
    /// Number of logical data objects.
    pub objects: usize,
    /// Number of tasks in the sequential trace.
    pub tasks: usize,
    /// Maximum object size in allocation units (sizes drawn in `1..=max`).
    pub max_obj_size: u64,
    /// Maximum reads per task (1..=max).
    pub max_reads: usize,
    /// Probability that a task's output access is an in-place update of an
    /// existing object rather than a def of a fresh value.
    pub update_prob: f64,
    /// Probability that an in-place update is marked *commuting*
    /// (`AccessKind::Accum`); 0 disables commuting entirely.
    pub accum_prob: f64,
    /// Maximum task weight (weights drawn in `1.0..=max`).
    pub max_weight: f64,
}

impl Default for RandomGraphSpec {
    fn default() -> Self {
        RandomGraphSpec {
            objects: 24,
            tasks: 60,
            max_obj_size: 4,
            max_reads: 3,
            update_prob: 0.35,
            accum_prob: 0.0,
            max_weight: 4.0,
        }
    }
}

/// Generate a random irregular task graph by replaying a random sequential
/// trace through [`crate::ddg::TraceBuilder`]. The result is guaranteed to
/// be a dependence-complete DAG with mixed granularities, resembling the
/// partitioned sparse codes the paper targets.
pub fn random_irregular_graph(seed: u64, spec: &RandomGraphSpec) -> TaskGraph {
    use crate::ddg::{AccessKind, TraceBuilder, WritePolicy};
    let mut rng = SplitMix64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let mut tb = TraceBuilder::new(WritePolicy::Rename);
    let objs: Vec<ObjId> =
        (0..spec.objects).map(|_| tb.add_object(1 + rng.below(spec.max_obj_size))).collect();
    let mut written: Vec<ObjId> = Vec::new();
    // O(1) membership alongside the ordered list, so generation stays
    // linear at the bench sizes (10⁵⁺ tasks).
    let mut is_written = vec![false; spec.objects];
    for i in 0..spec.tasks {
        let weight = 1.0 + rng.unit_f64() * (spec.max_weight - 1.0);
        let mut acc: Vec<(ObjId, AccessKind)> = Vec::new();
        // Reads come from already-written objects to keep the trace causal.
        if !written.is_empty() {
            let nr = 1 + rng.below(spec.max_reads as u64) as usize;
            for _ in 0..nr.min(written.len()) {
                let d = written[rng.below(written.len() as u64) as usize];
                acc.push((d, AccessKind::Read));
            }
        }
        // One output object: update an existing one or def a fresh one.
        let out = objs[(i * 7 + rng.below(3) as usize) % objs.len()];
        let kind = if !written.is_empty() && rng.unit_f64() < spec.update_prob {
            if rng.unit_f64() < spec.accum_prob {
                AccessKind::Accum
            } else {
                AccessKind::Update
            }
        } else {
            AccessKind::Write
        };
        // Don't both read and write the same logical object unless updating.
        acc.retain(|&(d, _)| d != out);
        acc.push((out, kind));
        tb.add_task(weight, &acc);
        if !is_written[out.idx()] {
            is_written[out.idx()] = true;
            written.push(out);
        }
    }
    let (g, _) = tb.build(false).expect("random trace builds a DAG");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use crate::schedule::CostModel;

    #[test]
    fn figure2_shape() {
        let g = figure2_dag();
        assert_eq!(g.num_tasks(), 20);
        assert_eq!(g.num_objects(), 11);
        assert!(g.is_dependence_complete());
        assert_eq!(g.seq_space(), 11);
    }

    #[test]
    fn figure2_volatile_sets() {
        let g = figure2_dag();
        let assign = figure2_assignment();
        let (perm0, vola0) = assign.perm_vola(&g, 0);
        let (perm1, vola1) = assign.perm_vola(&g, 1);
        let ids = |v: &[ObjId]| v.iter().map(|d| d.0 + 1).collect::<Vec<_>>();
        assert_eq!(ids(&perm0), vec![1, 3, 5, 7, 9, 11]);
        assert_eq!(ids(&perm1), vec![2, 4, 6, 8, 10]);
        assert_eq!(ids(&vola0), vec![8]);
        assert_eq!(ids(&vola1), vec![1, 3, 5, 7]);
    }

    #[test]
    fn figure2_critical_path_fact() {
        // Paper: "T[7,8] has a longer path ... the path is T[7,8], T[8],
        // T[8,9] with length 4 because communication delay is also
        // included".
        let g = figure2_dag();
        let assign = figure2_assignment();
        let bl = algo::bottom_levels(&g, &CostModel::unit(), Some(&assign));
        let t78 = figure2_task(&g, "T[7,8]");
        assert!(bl[t78.idx()] >= 4.0 - 1e-9, "bottom level {}", bl[t78.idx()]);
        // The exact quoted path: T[7,8](1) + T[8](1) + comm(1) + T[8,9](1).
        let t8 = figure2_task(&g, "T[8]");
        let t89 = figure2_task(&g, "T[8,9]");
        assert!(g.has_edge(t78, t8));
        assert!(g.has_edge(t8, t89));
    }

    #[test]
    fn schedules_are_valid() {
        let g = figure2_dag();
        assert!(figure2_schedule_b().is_valid(&g));
        assert!(figure2_schedule_c().is_valid(&g));
    }

    #[test]
    fn random_graphs_are_dags_and_complete() {
        for seed in 0..8 {
            let g = random_irregular_graph(seed, &RandomGraphSpec::default());
            assert!(algo::topo_sort(&g).is_some());
            assert!(g.is_dependence_complete(), "seed {seed}");
            assert!(g.num_tasks() > 0);
        }
    }

    #[test]
    fn random_graphs_with_commuting_marks() {
        let spec = RandomGraphSpec { accum_prob: 0.8, update_prob: 0.7, ..Default::default() };
        let mut any_group = false;
        for seed in 0..8 {
            let g = random_irregular_graph(seed, &spec);
            assert!(algo::topo_sort(&g).is_some());
            assert!(g.is_dependence_complete(), "seed {seed}");
            any_group |= g.tasks().any(|t| g.commute_group(t).is_some());
        }
        assert!(any_group, "no commuting group across 8 seeds");
    }

    #[test]
    fn splitmix_determinism() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SplitMix64(7);
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
