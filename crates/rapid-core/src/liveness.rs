//! Volatile-object lifetime analysis (paper Definition 4 and §3.3).
//!
//! For a fixed per-processor execution order, a volatile object is *alive*
//! at a position if it is accessed there, or has been accessed before and
//! will be accessed again later; otherwise it is *dead* (obsolete). Dead
//! points are computed statically by a linear sweep over each processor's
//! order ("the dead point information can be statically calculated by
//! performing a data flow analysis on a given DAG with a complexity
//! proportional to the size of the graph").

use crate::graph::{ObjId, TaskGraph};
use crate::schedule::Schedule;

/// Lifetime information for one processor's task order.
#[derive(Clone, Debug, Default)]
pub struct ProcLiveness {
    /// `first_use[i]`: volatile objects whose first local access is at
    /// position `i` of the order (sorted by object id).
    pub first_use: Vec<Vec<ObjId>>,
    /// `dead_after[i]`: volatile objects whose last local access is at
    /// position `i`; their space may be recycled at any later MAP.
    pub dead_after: Vec<Vec<ObjId>>,
    /// Every volatile object of the processor (sorted).
    pub volatile: Vec<ObjId>,
    /// `volatile_span[k] = (first, last)` positions for `volatile[k]`.
    pub volatile_span: Vec<(u32, u32)>,
}

/// Lifetime information for a whole schedule.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// One entry per processor.
    pub procs: Vec<ProcLiveness>,
}

impl Liveness {
    /// Compute lifetimes for `sched`. Complexity is O(Σ access-set sizes).
    pub fn analyze(g: &TaskGraph, sched: &Schedule) -> Liveness {
        let m = g.num_objects();
        let mut first = vec![u32::MAX; m];
        let mut last = vec![u32::MAX; m];
        let mut procs = Vec::with_capacity(sched.order.len());
        for (p, ord) in sched.order.iter().enumerate() {
            // Reset only the slots we will touch (objects of this proc).
            let mut touched: Vec<ObjId> = Vec::new();
            for (i, &t) in ord.iter().enumerate() {
                for d in g.accesses(t) {
                    if sched.assign.owner_of(d) == p as u32 {
                        continue; // permanent on this processor
                    }
                    if first[d.idx()] == u32::MAX {
                        first[d.idx()] = i as u32;
                        touched.push(d);
                    }
                    last[d.idx()] = i as u32;
                }
            }
            touched.sort_unstable();
            let mut pl = ProcLiveness {
                first_use: vec![Vec::new(); ord.len()],
                dead_after: vec![Vec::new(); ord.len()],
                volatile: touched.clone(),
                volatile_span: Vec::with_capacity(touched.len()),
            };
            for &d in &touched {
                let (f, l) = (first[d.idx()], last[d.idx()]);
                pl.first_use[f as usize].push(d);
                pl.dead_after[l as usize].push(d);
                pl.volatile_span.push((f, l));
            }
            for v in pl.first_use.iter_mut().chain(pl.dead_after.iter_mut()) {
                v.sort_unstable();
            }
            // Clear scratch for next processor.
            for &d in &touched {
                first[d.idx()] = u32::MAX;
                last[d.idx()] = u32::MAX;
            }
            procs.push(pl);
        }
        Liveness { procs }
    }

    /// Is volatile object `d` alive at position `pos` on processor `p`?
    /// (Definition 4.) Returns `false` for objects that are not volatile on
    /// `p`.
    pub fn is_alive(&self, p: usize, d: ObjId, pos: u32) -> bool {
        let pl = &self.procs[p];
        match pl.volatile.binary_search(&d) {
            Ok(k) => {
                let (f, l) = pl.volatile_span[k];
                f <= pos && pos <= l
            }
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::graph::TaskGraphBuilder;
    use crate::graph::TaskId;
    use crate::schedule::{Assignment, Schedule};

    #[test]
    fn spans_on_simple_pipeline() {
        // P1 runs three tasks reading remote objects a (twice) and b (once).
        let mut b = TaskGraphBuilder::new();
        let da = b.add_object(2);
        let db = b.add_object(3);
        let dx = b.add_object(1);
        let dy = b.add_object(1);
        let dz = b.add_object(1);
        let w0 = b.add_task(1.0, &[], &[da]);
        let w1 = b.add_task(1.0, &[], &[db]);
        let r0 = b.add_task(1.0, &[da], &[dx]);
        let r1 = b.add_task(1.0, &[db], &[dy]);
        let r2 = b.add_task(1.0, &[da], &[dz]);
        b.add_edge(w0, r0);
        b.add_edge(w0, r2);
        b.add_edge(w1, r1);
        let g = b.build().unwrap();
        let assign =
            Assignment { task_proc: vec![0, 0, 1, 1, 1], owner: vec![0, 0, 1, 1, 1], nprocs: 2 };
        let sched = Schedule { assign, order: vec![vec![w0, w1], vec![r0, r1, r2]] };
        let lv = Liveness::analyze(&g, &sched);
        let p1 = &lv.procs[1];
        assert_eq!(p1.volatile, vec![da, db]);
        // a first used at pos 0, last at pos 2; b only at pos 1.
        assert_eq!(p1.volatile_span, vec![(0, 2), (1, 1)]);
        assert_eq!(p1.first_use[0], vec![da]);
        assert_eq!(p1.first_use[1], vec![db]);
        assert_eq!(p1.dead_after[1], vec![db]);
        assert_eq!(p1.dead_after[2], vec![da]);
        assert!(lv.is_alive(1, da, 1));
        assert!(!lv.is_alive(1, db, 2));
        assert!(!lv.is_alive(1, dx, 0), "permanent objects are not tracked");
        // P0 has no volatiles.
        assert!(lv.procs[0].volatile.is_empty());
    }

    #[test]
    fn figure2_rcp_dead_points() {
        // Paper §3.2: in the schedule of Figure 2(b), on P1 volatile d3 is
        // dead after T[3,10] and d5 dead after T[5,10].
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_b();
        let lv = Liveness::analyze(&g, &sched);
        let p1 = &lv.procs[1];
        let pos_of = |t: TaskId| sched.order[1].iter().position(|&x| x == t).unwrap() as u32;
        let d3 = fixtures::obj(3);
        let d5 = fixtures::obj(5);
        let t_3_10 = fixtures::figure2_task(&g, "T[3,10]");
        let t_5_10 = fixtures::figure2_task(&g, "T[5,10]");
        let k3 = p1.volatile.binary_search(&d3).unwrap();
        let k5 = p1.volatile.binary_search(&d5).unwrap();
        assert_eq!(p1.volatile_span[k3].1, pos_of(t_3_10));
        assert_eq!(p1.volatile_span[k5].1, pos_of(t_5_10));
    }
}
