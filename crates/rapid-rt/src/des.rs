//! Deterministic discrete-event executor.
//!
//! Models the run-time behaviour of a static schedule under active memory
//! management on the simulated machine: MAP insertion and its costs,
//! address packages through single-slot mailboxes, suspended sends,
//! message transfer times, and the five-state machine of the paper's
//! Figure 3(b) (REC / EXE / SND / MAP / END, with RA and CQ service
//! operations run at every blocking state and task boundary).
//!
//! With `memory_mgmt` disabled the executor reproduces the *original*
//! RAPID behaviour — all volatile space allocated up front, addresses
//! exchanged once, no MAPs — which is the comparison base of the paper's
//! Tables 2 and 3 ("the parallel time of a schedule with 100% memory
//! available and without any memory managing overhead").

use crate::maps::{ExecError, MapPlanner, MapWindow, RtPlan};
use rapid_core::algo::OrdF64;
use rapid_core::graph::{ProcId, TaskGraph};
use rapid_core::schedule::Schedule;
use rapid_machine::config::MachineConfig;
use rapid_machine::fault::{FaultPlan, FaultSite, ProcFaults};
use rapid_machine::machine::{Machine, Port, SendOutcome, VirtualMachine};
use rapid_machine::mailbox::{AddrEntry, AddrPackage};
use rapid_trace::{
    decode_rings, FlatRing, FlatWriter, LiveDrain, ProcMetrics, ProtoState, StreamChecker,
    TraceConfig, TraceReport, TraceSet, TraceTier, Violation, NO_OFFSET,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// Virtual-time trace timestamp: simulated seconds scaled to integer
/// nanoseconds (a unit-cost task spans 1 s of virtual time). Pure f64
/// arithmetic on deterministic inputs, so seeded reruns stamp
/// byte-identical traces.
fn vts(now: f64) -> u64 {
    (now.max(0.0) * 1e9).round() as u64
}

/// A [`DesConfig`] builder was handed something the event-driven
/// executor cannot honour.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The fault plan carries rejection-site knobs (mailbox rejection
    /// and/or transient allocation failure). The DES cannot model them —
    /// an injected rejection of a genuinely empty slot would never
    /// receive a wake event in the event system, manufacturing a
    /// deadlock the real machine cannot exhibit — so the plan is
    /// refused rather than silently stripped.
    RejectionSitesUnsupported {
        /// The plan's mailbox-rejection probability (‰).
        mailbox_reject_permille: u16,
        /// The plan's allocation-failure probability (‰).
        alloc_fail_permille: u16,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::RejectionSitesUnsupported {
                mailbox_reject_permille,
                alloc_fail_permille,
            } => write!(
                f,
                "DES fault plans support delay sites only, but this plan injects rejections \
                 (mailbox {mailbox_reject_permille}‰, alloc {alloc_fail_permille}‰); \
                 strip them explicitly with FaultPlan::delay_sites_only"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Executor configuration.
#[derive(Clone, Debug)]
pub struct DesConfig {
    /// Machine cost/capacity model.
    pub machine: MachineConfig,
    /// Enable active memory management (MAPs, recycling, address
    /// notification). Disabled = original RAPID: everything preallocated.
    pub memory_mgmt: bool,
    /// MAP allocation window policy (ablation; the paper is greedy).
    pub window: MapWindow,
    /// Buffer address packages instead of the paper's single-slot
    /// mailboxes (ablation; the paper rejects buffering "to avoid the
    /// overhead of buffer managing"). With buffering senders never block
    /// in the MAP state; the outcome reports the peak queued packages so
    /// the space cost of the alternative is visible.
    pub addr_buffering: bool,
    /// Deterministic fault plan: message puts and address packages are
    /// held back by seeded virtual-time delays, arriving late and
    /// reordered. Only the delay sites apply in the DES — an injected
    /// mailbox *rejection* of a genuinely empty slot would never receive
    /// a wake event in the event system, manufacturing a deadlock the
    /// real machine cannot exhibit.
    pub faults: Option<FaultPlan>,
    /// Per-processor event tracing. `None` (the default) records nothing.
    /// Recording goes through the flat binary rings and is decoded back
    /// into typed events when the run completes. Timestamps are virtual
    /// nanoseconds, so same-seed reruns produce byte-identical traces.
    pub trace: Option<TraceConfig>,
    /// Check the Theorem-1 obligations *during* the simulation: a
    /// [`LiveDrain`] polls the rings inline between event-loop steps and
    /// the verdict lands in [`DesOutcome::stream_verdict`]. Requires
    /// `trace` at a tier other than [`TraceTier::Off`].
    pub streaming: bool,
}

impl DesConfig {
    /// Active-memory-management configuration on the given machine.
    pub fn managed(machine: MachineConfig) -> Self {
        DesConfig {
            machine,
            memory_mgmt: true,
            window: MapWindow::Greedy,
            addr_buffering: false,
            faults: None,
            trace: None,
            streaming: false,
        }
    }

    /// Original-RAPID configuration (no recycling).
    pub fn unmanaged(machine: MachineConfig) -> Self {
        DesConfig {
            machine,
            memory_mgmt: false,
            window: MapWindow::Greedy,
            addr_buffering: false,
            faults: None,
            trace: None,
            streaming: false,
        }
    }

    /// Override the MAP window policy.
    pub fn with_window(mut self, window: MapWindow) -> Self {
        self.window = window;
        self
    }

    /// Enable buffered address mailboxes.
    pub fn with_addr_buffering(mut self) -> Self {
        self.addr_buffering = true;
        self
    }

    /// Inject a deterministic fault plan. Only delay sites are
    /// supported (see [`DesConfig::faults`]): a plan carrying rejection
    /// or allocation-failure knobs is refused with
    /// [`ConfigError::RejectionSitesUnsupported`] instead of silently
    /// dropping them — strip such a plan explicitly with
    /// [`FaultPlan::delay_sites_only`] when the delay subset is what you
    /// mean.
    pub fn with_faults(mut self, faults: FaultPlan) -> Result<Self, ConfigError> {
        if faults.spec.has_rejection_sites() {
            return Err(ConfigError::RejectionSitesUnsupported {
                mailbox_reject_permille: faults.spec.mailbox_reject_permille,
                alloc_fail_permille: faults.spec.alloc_fail_permille,
            });
        }
        self.faults = Some(faults);
        Ok(self)
    }

    /// Enable per-processor event tracing. Note the trace checker's
    /// address obligations assume the managed protocol; unmanaged runs
    /// exchange all addresses up front and their traces legitimately
    /// show sends with no preceding address package.
    pub fn with_tracing(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// Run the streaming checker inline with the simulation (see
    /// [`DesConfig::streaming`]).
    pub fn with_streaming_check(mut self) -> Self {
        self.streaming = true;
        self
    }
}

/// Result of a successful run.
#[derive(Clone, Debug)]
pub struct DesOutcome {
    /// Simulated parallel (wall-clock) time.
    pub parallel_time: f64,
    /// Number of MAPs performed per processor.
    pub maps: Vec<u32>,
    /// Peak data-space units in use per processor.
    pub peak_mem: Vec<u64>,
    /// Data/sync messages sent.
    pub msgs_sent: usize,
    /// Address packages sent.
    pub addr_pkgs_sent: usize,
    /// Messages that had to wait in the suspended queue at least once.
    pub suspended_sends: usize,
    /// Peak number of address packages queued in any one mailbox (always
    /// ≤ 1 with the paper's single-slot scheme; interesting under the
    /// `addr_buffering` ablation).
    pub peak_queued_pkgs: usize,
    /// Per-task finish times (simulated seconds).
    pub finish: Vec<f64>,
    /// Recorded event traces when [`DesConfig::trace`] was set at a
    /// tier other than [`TraceTier::Off`].
    pub trace: Option<TraceSet>,
    /// Per-processor metrics aggregated from the trace (present exactly
    /// when `trace` is).
    pub metrics: Option<Vec<ProcMetrics>>,
    /// Verdict of the inline streaming checker, when
    /// [`DesConfig::streaming`] was set: the same typed result the
    /// post-hoc [`rapid_trace::check`] replay produces.
    pub stream_verdict: Option<Result<TraceReport, Violation>>,
}

impl DesOutcome {
    /// Average number of MAPs over processors (the paper's `#MAPs`
    /// columns; fractional because processors may differ).
    pub fn avg_maps(&self) -> f64 {
        if self.maps.is_empty() {
            return 0.0;
        }
        self.maps.iter().map(|&m| m as f64).sum::<f64>() / self.maps.len() as f64
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Performing MAP actions; may block on a full address slot.
    Map,
    /// Waiting for the current task's incoming messages.
    Rec,
    /// All tasks finished; draining the suspended send queue.
    End,
    /// Finished.
    Done,
}

struct ProcState {
    phase: Phase,
    /// Next task position in this processor's order.
    pos: u32,
    /// Position before which the next MAP runs.
    next_map: u32,
    /// Local clock.
    now: f64,
    planner: MapPlanner,
    /// Address packages awaiting an empty slot: `(dst, entries)` where an
    /// entry is an object id whose local buffer address is being notified.
    pending_pkgs: VecDeque<(ProcId, Vec<u32>)>,
    /// Message ids waiting for remote addresses.
    suspended: VecDeque<u32>,
    /// `(target_proc, obj)` pairs whose remote buffer address this
    /// processor has learned via RA.
    known: HashSet<(ProcId, u32)>,
    /// A [`Event::MailboxBusy`] was already recorded for the package at
    /// the head of `pending_pkgs` (avoid one event per wake-up).
    busy_reported: bool,
}

/// The discrete-event executor. Owns nothing of the schedule; borrow it
/// per run.
pub struct DesExecutor<'a> {
    g: &'a TaskGraph,
    sched: &'a Schedule,
    plan: RtPlan,
    cfg: DesConfig,
}

impl<'a> DesExecutor<'a> {
    /// Prepare an executor for `sched` (builds the protocol plan).
    pub fn new(g: &'a TaskGraph, sched: &'a Schedule, cfg: DesConfig) -> Self {
        let plan = RtPlan::new(g, sched);
        DesExecutor { g, sched, plan, cfg }
    }

    /// Access the protocol plan (tests, stats).
    pub fn plan(&self) -> &RtPlan {
        &self.plan
    }

    /// Run the simulation.
    pub fn run(&self) -> Result<DesOutcome, ExecError> {
        let nprocs = self.sched.assign.nprocs;
        let m = &self.cfg.machine;
        assert_eq!(nprocs, m.nprocs, "schedule and machine disagree on processor count");
        let mut pfaults: Vec<Option<ProcFaults>> =
            (0..nprocs).map(|p| self.cfg.faults.as_ref().map(|f| f.for_proc(p))).collect();

        let mut procs: Vec<ProcState> = (0..nprocs)
            .map(|p| ProcState {
                phase: if self.cfg.memory_mgmt {
                    Phase::Map
                } else if self.sched.order[p].is_empty() {
                    Phase::End
                } else {
                    Phase::Rec
                },
                pos: 0,
                next_map: 0,
                now: 0.0,
                planner: MapPlanner::new(p as ProcId, m.capacity, self.plan.perm_units[p]),
                pending_pkgs: VecDeque::new(),
                suspended: VecDeque::new(),
                known: HashSet::new(),
                busy_reported: false,
            })
            .collect();

        // Recording goes straight into per-processor flat rings; the
        // typed trace is decoded once at the end of the run. Headroom on
        // top of the configured capacity absorbs the multi-record object
        // lists of package events.
        let tier = self.cfg.trace.map_or(TraceTier::Off, |tc| tc.tier);
        let rings: Option<Vec<FlatRing>> = (tier != TraceTier::Off).then(|| {
            let cap = self.cfg.trace.map_or(0, |tc| tc.capacity);
            (0..nprocs).map(|p| FlatRing::new(p as u32, cap + cap / 4)).collect()
        });
        let mut ws: Option<Vec<FlatWriter<'_>>> =
            rings.as_ref().map(|rs| rs.iter().map(|r| r.writer(tier)).collect());
        // Per-(src, dst) address-package sequence numbers, counted
        // independently by sender and receiver so the checker can match
        // them up.
        let mut send_seq: Vec<Vec<u32>> = vec![vec![0; nprocs]; nprocs];
        let mut recv_seq: Vec<Vec<u32>> = vec![vec![0; nprocs]; nprocs];
        // Scratch for package object ids (reused, no per-package alloc).
        let mut obj_scratch: Vec<u32> = Vec::new();
        if let Some(ws) = ws.as_mut() {
            for w in ws.iter_mut() {
                w.state(0, ProtoState::Setup);
            }
        }
        // The inline streaming checker: polled between event-loop steps,
        // finished (with the exact quiesced claim) after the loop.
        let mut drain = (self.cfg.streaming && rings.is_some()).then(|| {
            LiveDrain::new(StreamChecker::new(
                self.g,
                self.sched,
                self.plan.trace_spec(m.capacity),
                tier,
            ))
        });

        if !self.cfg.memory_mgmt {
            // Original RAPID: all volatile space allocated up front.
            for (p, st) in procs.iter_mut().enumerate() {
                let vola: u64 =
                    self.plan.lv.procs[p].volatile.iter().map(|&d| self.g.obj_size(d)).sum();
                let need = self.plan.perm_units[p] + vola;
                if need > m.capacity {
                    return Err(ExecError::NonExecutable {
                        proc: p as ProcId,
                        position: 0,
                        needed: need,
                        capacity: m.capacity,
                    });
                }
                // Account the up-front footprint through the planner peak.
                st.planner = MapPlanner::new(p as ProcId, m.capacity, need);
                st.next_map = u32::MAX;
            }
        }

        // Global message state: arrival time once sent.
        let mut msg_arrival: Vec<Option<f64>> = vec![None; self.plan.msgs.len()];
        // Address mailboxes: the DES drives the same [`Machine`]/[`Port`]
        // surface the threaded executor runs on, through its virtual-time
        // backend. The paper's scheme keeps at most one package in flight
        // per pair ([`VirtualPort::outbound_queued`] is the blocking
        // probe); with `addr_buffering` the queue is unbounded and the
        // machine tracks its peak depth.
        let vm = VirtualMachine::new(nprocs, self.cfg.addr_buffering);
        let mut ports: Vec<_> = (0..nprocs).map(|p| vm.port(p)).collect();

        let mut events: BinaryHeap<Reverse<(OrdF64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let push = |events: &mut BinaryHeap<Reverse<(OrdF64, u64, u32)>>,
                    seq: &mut u64,
                    t: f64,
                    p: u32| {
            *seq += 1;
            events.push(Reverse((OrdF64(t), *seq, p)));
        };
        for p in 0..nprocs as u32 {
            push(&mut events, &mut seq, 0.0, p);
        }

        let mut finish = vec![0.0f64; self.g.num_tasks()];
        let mut done = 0usize;
        let mut msgs_sent = 0usize;
        let mut addr_pkgs_sent = 0usize;
        let mut suspended_ever: HashSet<u32> = HashSet::new();

        let mut polled = 0u64;
        while let Some(Reverse((OrdF64(t), _, p))) = events.pop() {
            polled += 1;
            if polled & 63 == 0 {
                if let (Some(d), Some(rs)) = (drain.as_mut(), rings.as_deref()) {
                    d.poll(rs);
                }
            }
            let pi = p as usize;
            if procs[pi].phase == Phase::Done {
                continue;
            }
            if t > procs[pi].now {
                procs[pi].now = t;
            }
            // Step processor p as far as it can go.
            'step: loop {
                // Service RA: consume arrived packages (any state at a
                // service point is a blocking state or a task boundary).
                // The port gates on the captured virtual clock and hands
                // back one run per source with logical package
                // boundaries; each logical package charges `ra_cost`.
                ports[pi].set_now(procs[pi].now);
                {
                    let ProcState { now, known, .. } = &mut procs[pi];
                    ports[pi].drain_batched(|src, run, segs| {
                        let mut start = 0usize;
                        for &end in segs {
                            *now += m.ra_cost;
                            if let Some(ws) = ws.as_mut() {
                                let sq = recv_seq[src][pi];
                                recv_seq[src][pi] += 1;
                                if ws[pi].tier() == TraceTier::Full {
                                    obj_scratch.clear();
                                    obj_scratch
                                        .extend(run[start..end as usize].iter().map(|e| e.obj));
                                    ws[pi].pkg_recv(vts(*now), src as u32, sq, &obj_scratch);
                                }
                            }
                            for e in &run[start..end as usize] {
                                known.insert((src as ProcId, e.obj));
                            }
                            // The pair's queue drained: wake the source in
                            // case it is blocked in MAP trying to send us
                            // a new package.
                            push(&mut events, &mut seq, *now, src as u32);
                            start = end as usize;
                        }
                    });
                }
                // Service CQ: retry suspended sends.
                let mut still: VecDeque<u32> = VecDeque::new();
                while let Some(mid) = procs[pi].suspended.pop_front() {
                    if self.sendable(&procs[pi].known, mid) {
                        if let Some(ws) = ws.as_mut() {
                            ws[pi].cq_retry(vts(procs[pi].now), mid);
                        }
                        let arr = self.do_send(
                            &mut procs[pi].now,
                            mid,
                            m,
                            &mut pfaults[pi],
                            ws.as_mut().map(|ws| &mut ws[pi]),
                        );
                        if let Some(ws) = ws.as_mut() {
                            ws[pi].send_ok(vts(procs[pi].now), mid);
                        }
                        msg_arrival[mid as usize] = Some(arr);
                        msgs_sent += 1;
                        push(&mut events, &mut seq, arr, self.plan.msgs[mid as usize].dst_proc);
                    } else {
                        still.push_back(mid);
                    }
                }
                procs[pi].suspended = still;

                match procs[pi].phase {
                    Phase::Map => {
                        // First entry into this MAP: compute its action.
                        if procs[pi].pending_pkgs.is_empty() && procs[pi].pos == procs[pi].next_map
                        {
                            let pos = procs[pi].pos;
                            if let Some(ws) = ws.as_mut() {
                                let ts = vts(procs[pi].now);
                                ws[pi].state(ts, ProtoState::Map);
                                ws[pi].map_begin(ts, pos);
                            }
                            let action = procs[pi].planner.run_map_with(
                                self.g,
                                self.sched,
                                &self.plan,
                                pos,
                                self.cfg.window,
                            )?;
                            procs[pi].now += m.map_fixed_cost
                                + m.alloc_cost * (action.frees.len() + action.allocs.len()) as f64;
                            if let Some(ws) = ws.as_mut() {
                                let ts = vts(procs[pi].now);
                                // The DES places no real buffers; record
                                // counting-only records with NO_OFFSET.
                                for &d in &action.frees {
                                    ws[pi].free(ts, d.0, self.g.obj_size(d), NO_OFFSET);
                                }
                                for &d in &action.allocs {
                                    ws[pi].alloc(ts, d.0, self.g.obj_size(d), NO_OFFSET);
                                }
                            }
                            procs[pi].next_map = action.next_map;
                            // Group notifications by destination.
                            let mut by_dst: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
                            for nfy in &action.notifies {
                                by_dst[nfy.dst as usize].push(nfy.obj);
                            }
                            for (dst, objs) in by_dst.into_iter().enumerate() {
                                if !objs.is_empty() {
                                    procs[pi].pending_pkgs.push_back((dst as ProcId, objs));
                                }
                            }
                        }
                        // Send pending packages; block on a full slot
                        // unless buffering is enabled (ablation).
                        while let Some((dst, objs)) = procs[pi].pending_pkgs.front() {
                            let (dst, nobjs) = (*dst as usize, objs.len() as u64);
                            if !self.cfg.addr_buffering && ports[pi].outbound_queued(dst) {
                                // Blocked in MAP (paper §3.3); RA of the
                                // destination will wake us.
                                if !procs[pi].busy_reported {
                                    procs[pi].busy_reported = true;
                                    if let Some(ws) = ws.as_mut() {
                                        ws[pi].mailbox_busy(vts(procs[pi].now), dst as u32);
                                    }
                                }
                                break 'step;
                            }
                            procs[pi].busy_reported = false;
                            procs[pi].now += m.addr_pkg_cost;
                            // Injected mailbox hand-off delay (virtual time).
                            let fault_lag = pfaults[pi]
                                .as_mut()
                                .and_then(|f| f.mailbox_delay())
                                .map_or(0.0, |d| d.as_secs_f64());
                            let arrive = procs[pi].now + m.transfer_time(nobjs) + fault_lag;
                            let Some((_, objs)) = procs[pi].pending_pkgs.pop_front() else { break };
                            if let Some(ws) = ws.as_mut() {
                                let ts = vts(procs[pi].now);
                                if fault_lag > 0.0 {
                                    ws[pi].fault(ts, FaultSite::MailboxDelay);
                                }
                                let sq = send_seq[pi][dst];
                                send_seq[pi][dst] += 1;
                                ws[pi].pkg_send(ts, dst as u32, sq, &objs);
                            }
                            ports[pi].set_stamp(arrive);
                            let mut pkg: AddrPackage = objs
                                .iter()
                                .map(|&o| AddrEntry { obj: o, offset: NO_OFFSET })
                                .collect();
                            // The emptiness probe above (or unbounded
                            // buffering) guarantees acceptance; a refusal
                            // would be a backend bug, not a protocol state.
                            if ports[pi].send_package(dst, &mut pkg) == SendOutcome::Busy {
                                return Err(ExecError::Internal {
                                    proc: pi as ProcId,
                                    detail: "virtual mailbox refused a probed-empty send".into(),
                                });
                            }
                            addr_pkgs_sent += 1;
                            push(&mut events, &mut seq, arrive, dst as u32);
                        }
                        if procs[pi].pending_pkgs.is_empty() {
                            if let Some(ws) = ws.as_mut() {
                                ws[pi].map_end(
                                    vts(procs[pi].now),
                                    procs[pi].pos,
                                    procs[pi].next_map,
                                    procs[pi].planner.in_use(),
                                    procs[pi].planner.peak(),
                                );
                            }
                            procs[pi].phase =
                                if procs[pi].pos as usize == self.sched.order[pi].len() {
                                    Phase::End
                                } else {
                                    Phase::Rec
                                };
                        }
                    }
                    Phase::Rec => {
                        let pos = procs[pi].pos as usize;
                        let t = self.sched.order[pi][pos];
                        if let Some(ws) = ws.as_mut() {
                            ws[pi].state(vts(procs[pi].now), ProtoState::Rec);
                        }
                        // Wait for every incoming message.
                        let mut latest = procs[pi].now;
                        for &mid in &self.plan.in_msgs[t.idx()] {
                            match msg_arrival[mid as usize] {
                                Some(a) => latest = latest.max(a),
                                // Not sent yet: block; the send will wake us.
                                None => break 'step,
                            }
                        }
                        procs[pi].now = latest;
                        if let Some(ws) = ws.as_mut() {
                            let ts = vts(procs[pi].now);
                            for &mid in &self.plan.in_msgs[t.idx()] {
                                ws[pi].msg_recv(ts, mid);
                            }
                        }
                        // EXE. Managed runs pay the address-table
                        // indirection for every object the task touches.
                        if self.cfg.memory_mgmt {
                            let naccess = self.g.reads(t).len() + self.g.writes(t).len();
                            procs[pi].now += m.addr_lookup_cost * naccess as f64;
                        }
                        if let Some(ws) = ws.as_mut() {
                            let ts = vts(procs[pi].now);
                            ws[pi].state(ts, ProtoState::Exe);
                            ws[pi].task_begin(ts, t.0, pos as u32);
                        }
                        procs[pi].now += m.task_time(self.g.weight(t));
                        finish[t.idx()] = procs[pi].now;
                        done += 1;
                        if let Some(ws) = ws.as_mut() {
                            let ts = vts(procs[pi].now);
                            ws[pi].task_end(ts, t.0);
                            ws[pi].state(ts, ProtoState::Snd);
                        }
                        // SND.
                        for &mid in &self.plan.out_msgs[t.idx()] {
                            if self.sendable(&procs[pi].known, mid) {
                                let arr = self.do_send(
                                    &mut procs[pi].now,
                                    mid,
                                    m,
                                    &mut pfaults[pi],
                                    ws.as_mut().map(|ws| &mut ws[pi]),
                                );
                                if let Some(ws) = ws.as_mut() {
                                    ws[pi].send_ok(vts(procs[pi].now), mid);
                                }
                                msg_arrival[mid as usize] = Some(arr);
                                msgs_sent += 1;
                                push(
                                    &mut events,
                                    &mut seq,
                                    arr,
                                    self.plan.msgs[mid as usize].dst_proc,
                                );
                            } else {
                                if let Some(ws) = ws.as_mut() {
                                    let msg = &self.plan.msgs[mid as usize];
                                    let missing = msg
                                        .objs
                                        .iter()
                                        .find(|&&d| {
                                            self.sched.assign.owner_of(d) != msg.dst_proc
                                                && !procs[pi].known.contains(&(msg.dst_proc, d.0))
                                        })
                                        .map_or(u32::MAX, |d| d.0);
                                    ws[pi].send_suspend(vts(procs[pi].now), mid, missing);
                                }
                                suspended_ever.insert(mid);
                                procs[pi].suspended.push_back(mid);
                            }
                        }
                        procs[pi].pos += 1;
                        let len = self.sched.order[pi].len() as u32;
                        procs[pi].phase = if procs[pi].pos == len {
                            Phase::End
                        } else if self.cfg.memory_mgmt && procs[pi].pos == procs[pi].next_map {
                            Phase::Map
                        } else {
                            Phase::Rec
                        };
                        // Yield after every task: re-queue ourselves so
                        // that other processors' earlier events (message
                        // and address-package arrivals) interleave in
                        // simulated-time order — RA/CQ are then serviced
                        // at the right task boundary, as on real hardware.
                        push(&mut events, &mut seq, procs[pi].now, p);
                        break 'step;
                    }
                    Phase::End => {
                        if let Some(ws) = ws.as_mut() {
                            ws[pi].state(vts(procs[pi].now), ProtoState::End);
                        }
                        if procs[pi].suspended.is_empty() {
                            procs[pi].phase = Phase::Done;
                            if let Some(ws) = ws.as_mut() {
                                ws[pi].state(vts(procs[pi].now), ProtoState::Done);
                            }
                            break 'step;
                        }
                        // Blocked until an address package arrives.
                        break 'step;
                    }
                    Phase::Done => break 'step,
                }
            }
        }

        let remaining = self.g.num_tasks() - done;
        if remaining > 0 {
            if std::env::var_os("RAPID_DES_DEBUG").is_some() {
                for (pi, st) in procs.iter().enumerate() {
                    eprintln!(
                        "P{pi}: phase={:?} pos={}/{} next_map={} pending_pkgs={} suspended={:?} now={}",
                        st.phase,
                        st.pos,
                        self.sched.order[pi].len(),
                        st.next_map,
                        st.pending_pkgs.len(),
                        st.suspended,
                        st.now
                    );
                    if st.phase == Phase::Rec {
                        let t = self.sched.order[pi][st.pos as usize];
                        let unsent: Vec<u32> = self.plan.in_msgs[t.idx()]
                            .iter()
                            .copied()
                            .filter(|&mid| msg_arrival[mid as usize].is_none())
                            .collect();
                        eprintln!(
                            "  waiting task {t:?} ({}), unsent in-msgs: {:?}",
                            self.g.task_label(t),
                            unsent
                                .iter()
                                .map(|&mid| {
                                    let m = &self.plan.msgs[mid as usize];
                                    format!(
                                        "msg{mid} from {:?}@P{} objs {:?}",
                                        m.src_task, m.src_proc, m.objs
                                    )
                                })
                                .collect::<Vec<_>>()
                        );
                    }
                }
            }
            return Err(ExecError::Stalled { remaining, snapshot: None });
        }
        let parallel_time = procs.iter().map(|s| s.now).fold(0.0f64, f64::max);
        // Quiesce the writers, then decode the rings back into the typed
        // schema (exact drop accounting via the quiesced claim).
        drop(ws);
        let trace = rings.as_deref().map(decode_rings);
        let metrics = trace.as_ref().map(ProcMetrics::from_traces);
        let stream_verdict = match (drain, rings.as_deref()) {
            (Some(d), Some(rs)) => Some(d.finish(rs)),
            _ => None,
        };
        Ok(DesOutcome {
            parallel_time,
            maps: procs.iter().map(|s| s.planner.maps()).collect(),
            peak_mem: procs.iter().map(|s| s.planner.peak()).collect(),
            msgs_sent,
            addr_pkgs_sent,
            suspended_sends: suspended_ever.len(),
            peak_queued_pkgs: vm.peak_queued(),
            finish,
            trace,
            metrics,
            stream_verdict,
        })
    }

    /// Is message `mid` sendable given the sender's address knowledge?
    fn sendable(&self, known: &HashSet<(ProcId, u32)>, mid: u32) -> bool {
        let msg = &self.plan.msgs[mid as usize];
        if !self.cfg.memory_mgmt {
            return true; // all addresses exchanged up front
        }
        msg.objs.iter().all(|&d| {
            self.sched.assign.owner_of(d) == msg.dst_proc || known.contains(&(msg.dst_proc, d.0))
        })
    }

    /// Charge the sender's put overhead (plus the managed-mode address
    /// table lookup) and return the arrival time, including any injected
    /// virtual-time put delay.
    fn do_send(
        &self,
        now: &mut f64,
        mid: u32,
        m: &MachineConfig,
        f: &mut Option<ProcFaults>,
        w: Option<&mut FlatWriter<'_>>,
    ) -> f64 {
        let msg = &self.plan.msgs[mid as usize];
        *now += m.put_overhead;
        if self.cfg.memory_mgmt {
            *now += m.msg_lookup_cost;
        }
        let fault_lag = f.as_mut().and_then(|pf| pf.put_delay()).map_or(0.0, |d| d.as_secs_f64());
        if fault_lag > 0.0 {
            if let Some(w) = w {
                w.fault(vts(*now), FaultSite::PutDelay);
            }
        }
        *now + m.transfer_time(msg.units) + fault_lag
    }
}

/// Convenience: run a schedule under active memory management and return
/// the outcome.
pub fn run_managed(
    g: &TaskGraph,
    sched: &Schedule,
    machine: MachineConfig,
) -> Result<DesOutcome, ExecError> {
    DesExecutor::new(g, sched, DesConfig::managed(machine)).run()
}

/// Convenience: run a schedule as the original RAPID (no recycling).
pub fn run_unmanaged(
    g: &TaskGraph,
    sched: &Schedule,
    machine: MachineConfig,
) -> Result<DesOutcome, ExecError> {
    DesExecutor::new(g, sched, DesConfig::unmanaged(machine)).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_core::fixtures;
    use rapid_core::memreq::min_mem;

    fn unit_machine(cap: u64) -> MachineConfig {
        MachineConfig::unit(2, cap)
    }

    #[test]
    fn figure2_runs_with_ample_memory() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let out = run_managed(&g, &sched, unit_machine(100)).unwrap();
        assert_eq!(out.maps, vec![1, 1], "one MAP per processor when memory is ample");
        assert!(out.parallel_time >= 14.0);
        // A single up-front window allocates every volatile, so the peak
        // is the no-recycling footprint of each processor, not MIN_MEM.
        let rep = min_mem(&g, &sched);
        assert_eq!(out.peak_mem[0], rep.no_recycle(0));
        assert_eq!(out.peak_mem[1], rep.no_recycle(1));
        // Tight capacity brings the peak down to the MIN_MEM profile.
        let tight = run_managed(&g, &sched, unit_machine(rep.min_mem)).unwrap();
        assert!(tight.peak_mem[0] <= rep.min_mem && tight.peak_mem[1] <= rep.min_mem);
    }

    #[test]
    fn executable_iff_min_mem_fits() {
        let g = fixtures::figure2_dag();
        for sched in [fixtures::figure2_schedule_b(), fixtures::figure2_schedule_c()] {
            let mm = min_mem(&g, &sched).min_mem;
            for cap in mm.saturating_sub(2)..mm + 3 {
                let res = run_managed(&g, &sched, unit_machine(cap));
                if cap >= mm {
                    assert!(res.is_ok(), "cap {cap} >= MIN_MEM {mm} must run: {res:?}");
                } else {
                    assert!(
                        matches!(res, Err(ExecError::NonExecutable { .. })),
                        "cap {cap} < MIN_MEM {mm} must fail"
                    );
                }
            }
        }
    }

    #[test]
    fn tight_memory_needs_more_maps() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let loose = run_managed(&g, &sched, unit_machine(100)).unwrap();
        let tight = run_managed(&g, &sched, unit_machine(8)).unwrap();
        assert!(tight.avg_maps() > loose.avg_maps());
        assert!(tight.peak_mem.iter().all(|&m| m <= 8));
        // Managing memory cannot make the run faster under unit costs with
        // zero overhead parameters... it can reorder message waits though;
        // only sanity-check the run completed with the same task count.
        assert_eq!(tight.finish.len(), g.num_tasks());
    }

    #[test]
    fn unmanaged_baseline_matches_managed_with_full_memory() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let base = run_unmanaged(&g, &sched, unit_machine(100)).unwrap();
        let managed = run_managed(&g, &sched, unit_machine(100)).unwrap();
        // Zero-overhead unit machine: identical times.
        assert!((base.parallel_time - managed.parallel_time).abs() < 1e-9);
        assert_eq!(base.maps, vec![0, 0]);
        assert_eq!(base.suspended_sends, 0, "all addresses known up front");
    }

    #[test]
    fn unmanaged_rejects_insufficient_total_memory() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        // TOT is 9 (P1: 5 permanent + 4 volatile).
        assert!(matches!(
            run_unmanaged(&g, &sched, unit_machine(8)),
            Err(ExecError::NonExecutable { needed: 9, .. })
        ));
    }

    #[test]
    fn overheads_increase_parallel_time() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let free = run_managed(&g, &sched, unit_machine(8)).unwrap();
        let mut costly = unit_machine(8);
        costly.map_fixed_cost = 0.5;
        costly.alloc_cost = 0.1;
        costly.addr_pkg_cost = 0.2;
        costly.ra_cost = 0.1;
        let slow = run_managed(&g, &sched, costly).unwrap();
        assert!(slow.parallel_time > free.parallel_time);
    }

    #[test]
    fn suspended_sends_appear_under_tight_memory() {
        // With minimal capacity the second window's volatiles are
        // allocated late, so early producers must suspend their puts.
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let out = run_managed(&g, &sched, unit_machine(8)).unwrap();
        assert!(out.suspended_sends > 0);
        assert!(out.addr_pkgs_sent > 0);
    }

    #[test]
    fn idle_processor_is_harmless() {
        // A schedule over more processors than tasks need: the extra
        // processor owns nothing and must go straight to END.
        let g = fixtures::figure2_dag();
        let c = fixtures::figure2_schedule_c();
        let mut assign = c.assign.clone();
        assign.nprocs = 3;
        let sched = rapid_core::schedule::Schedule {
            assign,
            order: vec![c.order[0].clone(), c.order[1].clone(), Vec::new()],
        };
        for mgmt in [true, false] {
            let mut cfg = DesConfig::managed(MachineConfig::unit(3, 100));
            cfg.memory_mgmt = mgmt;
            let out = DesExecutor::new(&g, &sched, cfg).run().unwrap();
            assert_eq!(out.finish.len(), g.num_tasks());
        }
    }

    #[test]
    fn single_window_maximizes_maps() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let machine = MachineConfig::unit(2, 100);
        let greedy =
            DesExecutor::new(&g, &sched, DesConfig::managed(machine.clone())).run().unwrap();
        let single = DesExecutor::new(
            &g,
            &sched,
            DesConfig::managed(machine).with_window(crate::maps::MapWindow::Single),
        )
        .run()
        .unwrap();
        // One MAP per task position that introduces new volatiles; always
        // at least as many as greedy, and strictly more here.
        assert!(single.avg_maps() > greedy.avg_maps());
        assert_eq!(single.finish.len(), g.num_tasks());
        // Single-window runs use no more memory than greedy.
        for (s, gm) in single.peak_mem.iter().zip(&greedy.peak_mem) {
            assert!(s <= gm);
        }
    }

    #[test]
    fn addr_buffering_never_blocks_maps() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        // Tight memory: multiple MAPs → multiple packages per pair.
        let machine = MachineConfig::unit(2, 8);
        let slot = DesExecutor::new(&g, &sched, DesConfig::managed(machine.clone())).run().unwrap();
        let buf = DesExecutor::new(&g, &sched, DesConfig::managed(machine).with_addr_buffering())
            .run()
            .unwrap();
        assert!(slot.peak_queued_pkgs <= 1, "single-slot must never queue");
        assert!(buf.peak_queued_pkgs >= 1);
        // Same work completes either way (Theorem 1 needs no buffering).
        assert_eq!(slot.finish.len(), buf.finish.len());
    }

    #[test]
    fn injected_delays_are_deterministic_and_slow_the_run() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let machine = MachineConfig::unit(2, 8);
        let clean =
            DesExecutor::new(&g, &sched, DesConfig::managed(machine.clone())).run().unwrap();
        let faulted = |seed: u64| {
            DesExecutor::new(
                &g,
                &sched,
                DesConfig::managed(machine.clone())
                    .with_faults(FaultPlan::delay_heavy(seed))
                    .expect("delay-only plan"),
            )
            .run()
            .unwrap()
        };
        let a = faulted(5);
        let b = faulted(5);
        assert_eq!(a.parallel_time, b.parallel_time, "same seed must replay identically");
        assert_eq!(a.finish, b.finish);
        assert!(
            a.parallel_time > clean.parallel_time,
            "held-back messages must lengthen the critical path"
        );
        // Every task still completes; delays never change the work done.
        assert_eq!(a.finish.len(), g.num_tasks());
        let c = faulted(6);
        assert_ne!(
            (a.parallel_time, a.finish.clone()),
            (c.parallel_time, c.finish.clone()),
            "different seeds should perturb the timeline"
        );
    }

    #[test]
    fn rejection_site_fault_plans_are_refused_not_dropped() {
        let machine = MachineConfig::unit(2, 8);
        let plan = FaultPlan::mixed(7); // carries rejection + alloc sites
        let err = DesConfig::managed(machine.clone()).with_faults(plan.clone()).unwrap_err();
        match &err {
            &ConfigError::RejectionSitesUnsupported {
                mailbox_reject_permille,
                alloc_fail_permille,
            } => {
                assert_eq!(mailbox_reject_permille, plan.spec.mailbox_reject_permille);
                assert_eq!(alloc_fail_permille, plan.spec.alloc_fail_permille);
            }
        }
        let text = err.to_string();
        assert!(text.contains("delay sites only"), "{text}");
        // The documented escape hatch: strip to the delay subset.
        let cfg = DesConfig::managed(machine)
            .with_faults(plan.delay_sites_only())
            .expect("stripped plan is delay-only");
        assert!(cfg.faults.is_some());
    }

    #[test]
    fn traced_run_passes_the_checker_and_fills_metrics() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let machine = unit_machine(8); // tight: MAPs, packages, suspensions
        let ex = DesExecutor::new(
            &g,
            &sched,
            DesConfig::managed(machine).with_tracing(TraceConfig::default()),
        );
        let out = ex.run().unwrap();
        let trace = out.trace.as_ref().expect("tracing enabled");
        assert_eq!(trace.dropped(), 0);
        let spec = ex.plan().trace_spec(8);
        let rep = rapid_trace::check(&g, &sched, &spec, trace).expect("trace must be clean");
        assert!(rep.complete);
        assert_eq!(rep.tasks_run.iter().sum::<usize>(), g.num_tasks());
        assert_eq!(rep.maps, out.maps, "replayed MAP count must match the outcome");
        let metrics = out.metrics.as_ref().expect("metrics follow the trace");
        assert_eq!(metrics.iter().map(|mm| mm.tasks as usize).sum::<usize>(), g.num_tasks());
        assert!(metrics.iter().any(|mm| mm.pkgs_sent > 0));
        // Untraced runs stay lean.
        let bare = run_managed(&g, &sched, unit_machine(8)).unwrap();
        assert!(bare.trace.is_none() && bare.metrics.is_none());
    }

    #[test]
    fn random_graphs_execute_iff_min_mem_fits() {
        for seed in 0..10u64 {
            let g = fixtures::random_irregular_graph(seed, &fixtures::RandomGraphSpec::default());
            let owner = rapid_sched::assign::cyclic_owner_map(g.num_objects(), 3);
            let assign = rapid_sched::assign::owner_compute_assignment(&g, &owner, 3);
            let sched =
                rapid_sched::mpo::mpo_order(&g, &assign, &rapid_core::schedule::CostModel::unit());
            let mm = min_mem(&g, &sched).min_mem;
            let machine = MachineConfig::unit(3, mm);
            let out = run_managed(&g, &sched, machine).unwrap();
            assert!(out.peak_mem.iter().all(|&pm| pm <= mm), "seed {seed}");
            let machine = MachineConfig::unit(3, mm - 1);
            assert!(
                matches!(run_managed(&g, &sched, machine), Err(ExecError::NonExecutable { .. })),
                "seed {seed} must fail below MIN_MEM"
            );
        }
    }
}
