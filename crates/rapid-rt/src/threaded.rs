//! The threaded executor: real concurrency, real buffers.
//!
//! One OS thread per simulated processor. Each processor owns a
//! fixed-capacity [`RmaHeap`]; permanent objects are laid out identically
//! and deterministically on every processor's heap (so their addresses are
//! globally known without notification, as in RAPID), while volatile
//! buffers are allocated at MAPs from a real first-fit [`Arena`] and their
//! offsets travel to the data producers through single-slot address
//! mailboxes. Data moves with one-sided `put`s into the destination heap;
//! per-message arrival flags give the release/acquire happens-before edge
//! `SHMEM_PUT` + flag polling gave on the T3D.
//!
//! The thread body is the five-state machine of the paper's Figure 3(b);
//! the RA (read address packages) and CQ (check suspended queue) service
//! operations run in every blocking wait, which is what breaks the
//! circular-wait chains in the Theorem 1 proof. Stress tests run many
//! random graphs at exactly `MIN_MEM` capacity to exercise that argument
//! under real interleavings.

use crate::maps::{ExecError, MapPlanner, RtPlan};
use rapid_core::graph::{ObjId, TaskGraph, TaskId};
use rapid_core::schedule::Schedule;
use rapid_machine::arena::{Arena, ArenaError};
use rapid_machine::mailbox::{AddrEntry, MailboxBoard};
use rapid_machine::rma::{FlagBoard, RmaHeap};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering as AtOrd};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The buffers a task may touch while running: shared views of the objects
/// it reads, exclusive views of the objects it writes (an object both read
/// and written appears once, in the write set).
pub struct TaskCtx<'h> {
    reads: Vec<(u32, &'h [f64])>,
    writes: Vec<(u32, &'h mut [f64])>,
}

impl<'h> TaskCtx<'h> {
    /// Buffer of a read object. Panics if the task does not read `d` (or
    /// also writes it — use [`TaskCtx::write`]).
    ///
    /// The returned borrow is tied to the underlying heap (`'h`), not to
    /// the context, so it can be held across a later [`TaskCtx::write`]
    /// call — read and write buffers are always distinct objects.
    pub fn read(&self, d: ObjId) -> &'h [f64] {
        self.reads
            .iter()
            .find(|&&(o, _)| o == d.0)
            .map(|&(_, s)| s)
            .unwrap_or_else(|| panic!("task does not read-only {d:?}"))
    }

    /// Mutable buffer of a written object (reads the previous content for
    /// read-modify-write tasks). Panics if the task does not write `d`.
    pub fn write(&mut self, d: ObjId) -> &mut [f64] {
        self.writes
            .iter_mut()
            .find(|&&mut (o, _)| o == d.0)
            .map(|(_, s)| &mut **s)
            .unwrap_or_else(|| panic!("task does not write {d:?}"))
    }

    /// Ids of read-only objects, in access-set order.
    pub fn read_ids(&self) -> impl Iterator<Item = ObjId> + '_ {
        self.reads.iter().map(|&(o, _)| ObjId(o))
    }

    /// Ids of written objects, in access-set order.
    pub fn write_ids(&self) -> impl Iterator<Item = ObjId> + '_ {
        self.writes.iter().map(|&(o, _)| ObjId(o))
    }
}

/// Result of a threaded run.
#[derive(Clone, Debug)]
pub struct ThreadedOutcome {
    /// MAPs performed per processor.
    pub maps: Vec<u32>,
    /// Peak units in use per processor (counting accounting, matching the
    /// DES executor and `MEM_REQ`).
    pub peak_mem: Vec<u64>,
    /// Real arena high-water mark per processor (includes fragmentation).
    pub arena_peak: Vec<u64>,
    /// Final contents of every object, gathered from the owners' heaps.
    pub objects: Vec<Vec<f64>>,
    /// Wall-clock duration of the parallel section.
    pub wall: Duration,
}

/// The threaded executor.
pub struct ThreadedExecutor<'a> {
    g: &'a TaskGraph,
    sched: &'a Schedule,
    plan: RtPlan,
    capacity: u64,
    /// Watchdog: poison the run if a spin wait exceeds this duration.
    pub watchdog: Duration,
}

impl<'a> ThreadedExecutor<'a> {
    /// Prepare an executor. Requires an owner-compute schedule (every
    /// writer of an object runs on its owner) so that final object values
    /// live in the owners' permanent buffers.
    pub fn new(g: &'a TaskGraph, sched: &'a Schedule, capacity: u64) -> Self {
        assert!(
            rapid_sched::assign::is_owner_compute(g, &sched.assign),
            "threaded executor requires an owner-compute schedule"
        );
        let plan = RtPlan::new(g, sched);
        ThreadedExecutor { g, sched, plan, capacity, watchdog: Duration::from_secs(30) }
    }

    /// Run the schedule, applying `body` to every task. Object buffers
    /// start zeroed.
    pub fn run<F>(&self, body: F) -> Result<ThreadedOutcome, ExecError>
    where
        F: Fn(TaskId, &mut TaskCtx<'_>) + Sync,
    {
        self.run_with_init(body, |_, _| {})
    }

    /// Run the schedule with owner-side data initialization: before the
    /// protocol starts, each processor fills the permanent buffers of the
    /// objects it owns with `init(obj, buf)` — the RAPID convention where
    /// irregular data is resident before the executor stage (it is *not*
    /// part of the task graph, so it does not constrain DTS slicing).
    ///
    /// Note: `init` affects only the owners' permanent copies. An object
    /// that is read remotely before ever being written would see zeros on
    /// the reading processor; dependence-complete graphs produced by the
    /// builders in this workspace always write an object before any
    /// remote read.
    pub fn run_with_init<F, I>(&self, body: F, init: I) -> Result<ThreadedOutcome, ExecError>
    where
        F: Fn(TaskId, &mut TaskCtx<'_>) + Sync,
        I: Fn(ObjId, &mut [f64]) + Sync,
    {
        let nprocs = self.sched.assign.nprocs;
        let g = self.g;
        let plan = &self.plan;
        let sched = self.sched;

        // Deterministic permanent layout: objects in id order, bump
        // allocated from 0 on the owner's heap.
        let mut perm_off = vec![0u64; g.num_objects()];
        {
            let mut cursor = vec![0u64; nprocs];
            for d in g.objects() {
                let o = sched.assign.owner_of(d) as usize;
                perm_off[d.idx()] = cursor[o];
                cursor[o] += g.obj_size(d);
                if cursor[o] > self.capacity {
                    return Err(ExecError::NonExecutable {
                        proc: o as u32,
                        position: 0,
                        needed: cursor[o],
                        capacity: self.capacity,
                    });
                }
            }
        }
        let perm_off = &perm_off;

        let heaps: Vec<RmaHeap> =
            (0..nprocs).map(|_| RmaHeap::new(self.capacity)).collect();
        let heaps = &heaps;
        let flags = FlagBoard::new(plan.msgs.len());
        let flags = &flags;
        let mailboxes = MailboxBoard::new(nprocs);
        let mailboxes = &mailboxes;
        let poison = AtomicBool::new(false);
        let poison = &poison;
        let error: Mutex<Option<ExecError>> = Mutex::new(None);
        let error = &error;
        let body = &body;
        let init = &init;
        let watchdog = self.watchdog;

        let fail = move |e: ExecError| {
            let mut slot = error.lock().expect("error mutex poisoned");
            if slot.is_none() {
                *slot = Some(e);
            }
            poison.store(true, AtOrd::Release);
        };

        let started = Instant::now();
        let per_proc: Vec<(u32, u64, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..nprocs)
                .map(|p| {
                    scope.spawn(move || {
                        worker(
                            p, g, sched, plan, self.capacity, perm_off, heaps, flags,
                            mailboxes, poison, &fail, body, init, watchdog,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let wall = started.elapsed();

        if poison.load(AtOrd::Acquire) {
            return Err(error
                .lock()
                .expect("error mutex poisoned")
                .take()
                .unwrap_or(ExecError::Stalled { remaining: 0 }));
        }

        // Gather final object contents from the owners' permanent buffers.
        // SAFETY: all worker threads have joined; no concurrent access.
        let objects = g
            .objects()
            .map(|d| {
                let o = sched.assign.owner_of(d) as usize;
                unsafe { heaps[o].slice(perm_off[d.idx()], g.obj_size(d)) }.to_vec()
            })
            .collect();

        Ok(ThreadedOutcome {
            maps: per_proc.iter().map(|&(m, _, _)| m).collect(),
            peak_mem: per_proc.iter().map(|&(_, pk, _)| pk).collect(),
            arena_peak: per_proc.iter().map(|&(_, _, ap)| ap).collect(),
            objects,
            wall,
        })
    }
}

/// Execute the schedule sequentially (one buffer per object) — the
/// reference the threaded executor is validated against.
pub fn run_sequential<F>(g: &TaskGraph, body: F) -> Vec<Vec<f64>>
where
    F: Fn(TaskId, &mut TaskCtx<'_>),
{
    run_sequential_with_init(g, body, |_, _| {})
}

/// [`run_sequential`] with data initialization (mirrors
/// [`ThreadedExecutor::run_with_init`]).
pub fn run_sequential_with_init<F, I>(g: &TaskGraph, body: F, init: I) -> Vec<Vec<f64>>
where
    F: Fn(TaskId, &mut TaskCtx<'_>),
    I: Fn(ObjId, &mut [f64]),
{
    let order = rapid_core::algo::topo_sort(g).expect("graph is a DAG");
    let mut bufs: Vec<Vec<f64>> =
        g.objects().map(|d| vec![0.0; g.obj_size(d) as usize]).collect();
    for (i, buf) in bufs.iter_mut().enumerate() {
        init(ObjId(i as u32), buf);
    }
    for t in order {
        // Split-borrow the buffers: writes mutably, reads shared.
        let writes_ids = g.writes(t);
        let mut writes: Vec<(u32, &mut [f64])> = Vec::with_capacity(writes_ids.len());
        let mut reads: Vec<(u32, &[f64])> = Vec::new();
        // SAFETY: object ids are distinct within each set and across the
        // two sets (reads that are also written are dropped below), and
        // `bufs` outlives the ctx; we hand out one &mut per distinct id.
        let base = bufs.as_mut_ptr();
        for &d in writes_ids {
            let slice = unsafe { &mut *base.add(d as usize) };
            writes.push((d, slice.as_mut_slice()));
        }
        for &d in g.reads(t) {
            if writes_ids.binary_search(&d).is_err() {
                let slice = unsafe { &*base.add(d as usize) };
                reads.push((d, slice.as_slice()));
            }
        }
        let mut ctx = TaskCtx { reads, writes };
        body(t, &mut ctx);
    }
    bufs
}

/// Per-thread worker: returns `(maps, peak_units, arena_peak)`.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::too_many_arguments)]
fn worker<F, I>(
    p: usize,
    g: &TaskGraph,
    sched: &Schedule,
    plan: &RtPlan,
    capacity: u64,
    perm_off: &[u64],
    heaps: &[RmaHeap],
    flags: &FlagBoard,
    mailboxes: &MailboxBoard,
    poison: &AtomicBool,
    fail: &(impl Fn(ExecError) + Sync),
    body: &F,
    init: &I,
    watchdog: Duration,
) -> (u32, u64, u64)
where
    F: Fn(TaskId, &mut TaskCtx<'_>) + Sync,
    I: Fn(ObjId, &mut [f64]) + Sync,
{
    let mut arena = Arena::new(capacity);
    // Reproduce the deterministic permanent layout and load resident data.
    for d in g.objects() {
        if sched.assign.owner_of(d) as usize == p {
            match arena.alloc(g.obj_size(d)) {
                Ok(off) => {
                    debug_assert_eq!(off, perm_off[d.idx()]);
                    // SAFETY: setup phase — no other thread touches our
                    // permanent buffers before the protocol starts (the
                    // first remote put needs an address package or a
                    // write by our own tasks).
                    init(d, unsafe { heaps[p].slice_mut(off, g.obj_size(d)) });
                }
                Err(_) => {
                    fail(ExecError::NonExecutable {
                        proc: p as u32,
                        position: 0,
                        needed: plan.perm_units[p],
                        capacity,
                    });
                    return (0, 0, arena.peak());
                }
            }
        }
    }

    let mut planner = MapPlanner::new(p as u32, capacity, plan.perm_units[p]);
    // Offsets of this processor's live volatile buffers.
    let mut local_addr: HashMap<u32, u64> = HashMap::new();
    // Remote volatile addresses learned via RA: (target proc, obj) -> off.
    let mut known: HashMap<(u32, u32), u64> = HashMap::new();
    let mut suspended: Vec<u32> = Vec::new();

    // Resolve the local buffer of object `d` on this processor.
    let resolve = |d: ObjId, local_addr: &HashMap<u32, u64>| -> u64 {
        if sched.assign.owner_of(d) as usize == p {
            perm_off[d.idx()]
        } else {
            *local_addr
                .get(&d.0)
                .unwrap_or_else(|| panic!("volatile {d:?} not allocated on P{p}"))
        }
    };

    // RA: drain address packages destined to us.
    let ra = |known: &mut HashMap<(u32, u32), u64>| {
        mailboxes.drain_for(p, |src, pkg| {
            for e in pkg {
                known.insert((src as u32, e.obj), e.offset);
            }
        });
    };

    // Try to send message `mid`; true on success.
    let try_send = |mid: u32,
                    known: &HashMap<(u32, u32), u64>,
                    local_addr: &HashMap<u32, u64>|
     -> bool {
        let msg = &plan.msgs[mid as usize];
        let dst = msg.dst_proc;
        // All remote buffer addresses must be known.
        for &d in &msg.objs {
            if sched.assign.owner_of(d) != dst && !known.contains_key(&(dst, d.0)) {
                return false;
            }
        }
        for &d in &msg.objs {
            let len = g.obj_size(d);
            let remote = if sched.assign.owner_of(d) == dst {
                perm_off[d.idx()]
            } else {
                known[&(dst, d.0)]
            };
            let local = resolve(d, local_addr);
            // SAFETY (module protocol): we produced this object (our task
            // wrote it and no later writer has run — dependence
            // completeness), and the destination buffer is exclusively
            // ours to fill until we raise the flag.
            unsafe {
                let src = heaps[p].slice(local, len);
                heaps[dst as usize].put(remote, src);
            }
        }
        flags.raise(mid as usize);
        true
    };

    // CQ: retry the suspended queue.
    let cq = |suspended: &mut Vec<u32>,
              known: &HashMap<(u32, u32), u64>,
              local_addr: &HashMap<u32, u64>| {
        suspended.retain(|&mid| !try_send(mid, known, local_addr));
    };

    let order = &sched.order[p];
    let mut pos: u32 = 0;
    let mut next_map: u32 = 0;
    let deadline = Instant::now() + watchdog;

    macro_rules! spin_service {
        () => {
            ra(&mut known);
            cq(&mut suspended, &known, &local_addr);
            if poison.load(AtOrd::Acquire) {
                return (planner.maps(), planner.peak(), arena.peak());
            }
            if Instant::now() > deadline {
                fail(ExecError::Stalled { remaining: order.len() - pos as usize });
                return (planner.maps(), planner.peak(), arena.peak());
            }
            std::thread::yield_now();
        };
    }

    while (pos as usize) < order.len() {
        // MAP state.
        if pos == next_map {
            let mut action = match planner.run_map(g, sched, plan, pos) {
                Ok(a) => a,
                Err(e) => {
                    fail(e);
                    return (planner.maps(), planner.peak(), arena.peak());
                }
            };
            for d in &action.frees {
                let off = local_addr.remove(&d.0).expect("freed volatile was live");
                arena.free(off).expect("live volatile frees cleanly");
            }
            for d in &action.allocs {
                match arena.alloc(g.obj_size(*d)) {
                    Ok(off) => {
                        local_addr.insert(d.0, off);
                    }
                    Err(ArenaError::Fragmented { requested, .. }) => {
                        fail(ExecError::Fragmented { proc: p as u32, requested });
                        return (planner.maps(), planner.peak(), arena.peak());
                    }
                    Err(_) => {
                        fail(ExecError::NonExecutable {
                            proc: p as u32,
                            position: pos,
                            needed: planner.in_use(),
                            capacity,
                        });
                        return (planner.maps(), planner.peak(), arena.peak());
                    }
                }
            }
            next_map = action.next_map;
            // Fill in offsets and assemble per-destination packages.
            for n in &mut action.notifies {
                n.offset = local_addr[&n.obj];
            }
            let mut by_dst: HashMap<u32, Vec<AddrEntry>> = HashMap::new();
            for n in &action.notifies {
                by_dst
                    .entry(n.dst)
                    .or_default()
                    .push(AddrEntry { obj: n.obj, offset: n.offset });
            }
            let mut dsts: Vec<u32> = by_dst.keys().copied().collect();
            dsts.sort_unstable();
            for dst in dsts {
                let mut pkg = by_dst.remove(&dst).expect("key present");
                loop {
                    match mailboxes.slot(p, dst as usize).try_send(pkg) {
                        Ok(()) => break,
                        Err(back) => {
                            pkg = back;
                            // Blocked in MAP: keep servicing RA/CQ so the
                            // system keeps evolving (Theorem 1).
                            spin_service!();
                        }
                    }
                }
            }
        }

        let t = order[pos as usize];
        // REC state: wait for every incoming message.
        for &mid in &plan.in_msgs[t.idx()] {
            while !flags.is_raised(mid as usize) {
                spin_service!();
            }
        }

        // EXE state.
        {
            let writes_ids = g.writes(t);
            let mut writes: Vec<(u32, &mut [f64])> = Vec::with_capacity(writes_ids.len());
            let mut reads: Vec<(u32, &[f64])> = Vec::new();
            for &d in writes_ids {
                let d = ObjId(d);
                let off = resolve(d, &local_addr);
                // SAFETY (module protocol): this task is the unique writer
                // of `d` at this point of the dependence-complete
                // schedule; readers have either consumed earlier versions
                // or are ordered after us.
                writes.push((d.0, unsafe { heaps[p].slice_mut(off, g.obj_size(d)) }));
            }
            for &d in g.reads(t) {
                if writes_ids.binary_search(&d).is_ok() {
                    continue;
                }
                let d = ObjId(d);
                let off = resolve(d, &local_addr);
                // SAFETY: arrival flags have been observed with Acquire;
                // no writer may touch this buffer until tasks ordered
                // after us run.
                reads.push((d.0, unsafe { heaps[p].slice(off, g.obj_size(d)) }));
            }
            let mut ctx = TaskCtx { reads, writes };
            body(t, &mut ctx);
        }

        // SND state.
        for &mid in &plan.out_msgs[t.idx()] {
            if !try_send(mid, &known, &local_addr) {
                suspended.push(mid);
            }
        }
        ra(&mut known);
        cq(&mut suspended, &known, &local_addr);
        pos += 1;
    }

    // END state: drain the suspended queue.
    while !suspended.is_empty() {
        spin_service!();
    }
    (planner.maps(), planner.peak(), arena.peak())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_core::fixtures;
    use rapid_core::memreq::min_mem;
    use rapid_core::schedule::CostModel;

    /// A deterministic task body: every written buffer cell becomes
    /// `task_id + 1 + Σ(read buffers) + previous content`.
    fn test_body(t: TaskId, ctx: &mut TaskCtx<'_>) {
        let acc: f64 = ctx
            .reads
            .iter()
            .flat_map(|(_, s)| s.iter())
            .sum();
        for (_, w) in ctx.writes.iter_mut() {
            for x in w.iter_mut() {
                *x += t.0 as f64 + 1.0 + acc;
            }
        }
    }

    #[test]
    fn figure2_threaded_matches_sequential() {
        let g = fixtures::figure2_dag();
        for sched in [fixtures::figure2_schedule_b(), fixtures::figure2_schedule_c()] {
            let exec = ThreadedExecutor::new(&g, &sched, 64);
            let out = exec.run(test_body).unwrap();
            let reference = run_sequential(&g, test_body);
            assert_eq!(out.objects, reference);
            assert_eq!(out.maps, vec![1, 1]);
        }
    }

    #[test]
    fn figure2_threaded_at_exact_min_mem() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let mm = min_mem(&g, &sched).min_mem;
        let exec = ThreadedExecutor::new(&g, &sched, mm);
        let out = exec.run(test_body).unwrap();
        assert_eq!(out.objects, run_sequential(&g, test_body));
        assert!(out.peak_mem.iter().all(|&pk| pk <= mm));
        assert!(out.maps.iter().any(|&m| m > 1), "tight memory forces extra MAPs");
    }

    #[test]
    fn below_min_mem_fails_cleanly() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let mm = min_mem(&g, &sched).min_mem;
        let exec = ThreadedExecutor::new(&g, &sched, mm - 1);
        match exec.run(test_body) {
            Err(ExecError::NonExecutable { .. }) => {}
            other => panic!("expected NonExecutable, got {other:?}"),
        }
    }

    #[test]
    fn random_graph_stress_at_min_mem() {
        // The deadlock-freedom (Theorem 1) stress: random irregular graphs
        // on 4 threads at exactly MIN_MEM, MPO order.
        for seed in 0..8u64 {
            let g = fixtures::random_irregular_graph(
                seed,
                &fixtures::RandomGraphSpec::default(),
            );
            let owner = rapid_sched::assign::cyclic_owner_map(g.num_objects(), 4);
            let assign = rapid_sched::assign::owner_compute_assignment(&g, &owner, 4);
            let sched = rapid_sched::mpo::mpo_order(&g, &assign, &CostModel::unit());
            let mm = min_mem(&g, &sched).min_mem;
            let exec = ThreadedExecutor::new(&g, &sched, mm);
            match exec.run(test_body) {
                Ok(out) => {
                    assert_eq!(
                        out.objects,
                        run_sequential(&g, test_body),
                        "seed {seed}: results differ"
                    );
                }
                // A first-fit arena may fragment at exactly MIN_MEM with
                // mixed object sizes; that is a resource failure, not a
                // protocol failure.
                Err(ExecError::Fragmented { .. }) => {}
                Err(e) => panic!("seed {seed}: {e}"),
            }
        }
    }

    #[test]
    fn sequential_reference_accumulates_updates() {
        // w(d)=1; two chained updates add 2 and 3 => 6 per cell... the
        // body adds t+1 each time: t0 writes 1, t1 adds 2, t2 adds 3.
        let mut b = rapid_core::graph::TaskGraphBuilder::new();
        let d = b.add_object(3);
        let t0 = b.add_task(1.0, &[], &[d]);
        let t1 = b.add_task(1.0, &[], &[d]);
        let t2 = b.add_task(1.0, &[], &[d]);
        b.add_edge(t0, t1);
        b.add_edge(t1, t2);
        let g = b.build().unwrap();
        let out = run_sequential(&g, test_body);
        assert_eq!(out[0], vec![6.0, 6.0, 6.0]);
        let _ = (t0, t1, t2);
    }
}
