//! The threaded executor: real concurrency, real buffers.
//!
//! One OS thread per simulated processor. Each processor owns a
//! fixed-capacity [`RmaHeap`]; permanent objects are laid out identically
//! and deterministically on every processor's heap (so their addresses are
//! globally known without notification, as in RAPID), while volatile
//! buffers are allocated at MAPs from a real first-fit [`Arena`] and their
//! offsets travel to the data producers through single-slot address
//! mailboxes. Data moves with one-sided `put`s into the destination heap;
//! per-message arrival flags give the release/acquire happens-before edge
//! `SHMEM_PUT` + flag polling gave on the T3D.
//!
//! The thread body is the five-state machine of the paper's Figure 3(b);
//! the RA (read address packages) and CQ (check suspended queue) service
//! operations run in every blocking wait, which is what breaks the
//! circular-wait chains in the Theorem 1 proof. Stress tests run many
//! random graphs at exactly `MIN_MEM` capacity to exercise that argument
//! under real interleavings.
//!
//! ## Hot-path layout
//!
//! The per-task fast path is hash-free and scan-free:
//!
//! - **Address resolution is O(1) array indexing.** Each worker keeps two
//!   dense tables seeded with the deterministic permanent layout: `local`
//!   (object id → offset in this processor's arena) and `known`
//!   (`proc * num_objects + obj` → offset on that processor, filled in by
//!   RA packages). `resolve`, `try_send` and MAP alloc/free are plain
//!   array hits.
//! - **CQ retry is incremental.** A send that is missing a destination
//!   address parks on the id of the first missing object; an incoming
//!   address package wakes exactly the parked sends its entries unblock,
//!   instead of re-scanning every suspended message's full object list on
//!   every service call (the two-watched-literal trick: a retried send
//!   that is still blocked re-parks on its next missing object).
//! - **Blocking waits use tiered backoff** ([`Backoff`]: bounded spin
//!   hints → `yield_now` → short bounded parks) instead of an
//!   unconditional `yield_now` per poll, and reset to the spin tier on
//!   every observed progress. With the aggregating backend the backoff
//!   is flush-aware: buffered address packages are pushed toward their
//!   destinations before the first yield surrenders the core.
//! - **Address packages are batched.** A MAP's notifications arrive
//!   pre-sorted by destination, so the worker assembles one package per
//!   collaborating processor in a reusable buffer and performs one
//!   [`Port::send_package`] hand-off each — no per-entry contention, no
//!   allocation in steady state.
//! - **The comm backend is pluggable.** The protocol is written once
//!   against the [`Machine`]/[`Port`] surface; [`Backend::Direct`] is
//!   the paper-faithful single-slot scheme (senders block on a full
//!   slot), [`Backend::Aggregating`] coalesces logical packages per
//!   destination into batched hand-offs and never blocks the sender.
//!   The END state retires only once the port's buffers are drained, so
//!   the Theorem-1 obligations survive aggregation.
//! - **Workers can pin to cores.** [`ThreadedExecutor::with_pinning`]
//!   assigns workers to physical cores NUMA-aware (see
//!   [`rapid_machine::affinity`]) so the per-processor arena and RMA
//!   working sets stop migrating between caches.

use crate::inspector::{ProcDiag, StallSnapshot, StateBoard, WorkerState};
// sync-audit: the only Relaxed atomics in this module are the recovery
// diagnostics counters (`RecoveryLog`) — monotonic telemetry read after the
// workers join or for best-effort stall reports, never a publication edge.
// All cross-thread payload hand-offs go through the Release/Acquire
// FlagBoard and mailbox protocols, model-checked by `rapid_sync::models`
// (`sentguard`, `mailbox`; see DESIGN.md §16).

use crate::maps::{AccessOp, AccessViolation, ExecError, MapPlanner, RtPlan};
use crate::recover::RecoveryPolicy;
use rapid_core::graph::{ObjId, TaskGraph, TaskId};
use rapid_core::schedule::Schedule;
use rapid_machine::affinity;
use rapid_machine::arena::{Arena, ArenaError};
use rapid_machine::backoff::{Backoff, Retry};
use rapid_machine::fault::{FaultPlan, FaultSite, ProcFaults};
use rapid_machine::machine::{AggregatingMachine, DirectMachine, Machine, Port, SendOutcome};
use rapid_machine::mailbox::AddrEntry;
use rapid_machine::rma::{FlagBoard, RmaHeap};
use rapid_trace::{
    decode_ring, FlatRing, FlatWriter, LiveDrain, ProcMetrics, ProcTrace, ProtoState,
    StreamChecker, TraceConfig, TraceReport, TraceSet, TraceTier, Violation,
};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering as AtOrd};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Sentinel for "address not (yet) known" in the dense tables.
const NO_ADDR: u64 = u64::MAX;
/// Sentinel for "object not in this task's access set".
const NO_SLOT: u32 = u32::MAX;
/// Bounded retries of a MAP-time arena allocation that failed with
/// [`ArenaError::Fragmented`] before the window-truncation ladder kicks in.
const FRAG_RETRIES: u32 = 8;
/// Default stall watchdog when `RAPID_WATCHDOG_MS` is unset or invalid.
const DEFAULT_WATCHDOG: Duration = Duration::from_secs(30);

/// Parse the `RAPID_WATCHDOG_MS` override: a positive integer number of
/// milliseconds; anything else falls back to [`DEFAULT_WATCHDOG`]. Pure so
/// it is testable without mutating process environment in parallel tests.
fn parse_watchdog_ms(var: Option<&str>) -> Duration {
    match var.and_then(|s| s.trim().parse::<u64>().ok()) {
        Some(ms) if ms > 0 => Duration::from_millis(ms),
        _ => DEFAULT_WATCHDOG,
    }
}

/// Render a caught panic payload for [`ExecError::WorkerPanicked`].
fn panic_payload_str(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string payload>".to_string()
    }
}

/// The buffers a task may touch while running: shared views of the objects
/// it reads, exclusive views of the objects it writes (an object both read
/// and written appears once, in the write set).
///
/// Lookups go through a dense per-object slot table precomputed when the
/// context is assembled, so [`TaskCtx::read`] / [`TaskCtx::write`] are
/// O(1) — no linear scan of the access set.
pub struct TaskCtx<'h> {
    reads: Vec<(u32, &'h [f64])>,
    writes: Vec<(u32, &'h mut [f64])>,
    /// Object id → `(slot << 1) | is_write`, [`NO_SLOT`] when absent.
    /// Pooled by the executor across tasks: entries touched by this task
    /// are reset when the context is dismantled.
    slots: Vec<u32>,
}

impl<'h> TaskCtx<'h> {
    /// Build a context, indexing the access sets into `slots` (a scratch
    /// table of at least `num_objects` entries, all [`NO_SLOT`]).
    fn assemble(
        reads: Vec<(u32, &'h [f64])>,
        writes: Vec<(u32, &'h mut [f64])>,
        mut slots: Vec<u32>,
    ) -> Self {
        for (i, &(o, _)) in reads.iter().enumerate() {
            slots[o as usize] = (i as u32) << 1;
        }
        for (i, (o, _)) in writes.iter().enumerate() {
            slots[*o as usize] = ((i as u32) << 1) | 1;
        }
        TaskCtx { reads, writes, slots }
    }

    /// Tear the context down, resetting the touched slot entries and
    /// returning the pooled parts for the next task.
    #[allow(clippy::type_complexity)]
    fn dismantle(mut self) -> (Vec<(u32, &'h [f64])>, Vec<(u32, &'h mut [f64])>, Vec<u32>) {
        for &(o, _) in &self.reads {
            self.slots[o as usize] = NO_SLOT;
        }
        for (o, _) in &self.writes {
            self.slots[*o as usize] = NO_SLOT;
        }
        self.reads.clear();
        self.writes.clear();
        (self.reads, self.writes, self.slots)
    }

    /// Buffer of a read object. If the task does not read `d` (or also
    /// writes it — use [`TaskCtx::write`]), panics with a typed
    /// [`AccessViolation`] payload; the threaded executor catches it at
    /// the task boundary and returns
    /// [`ExecError::AccessViolation`] instead of aborting the process.
    ///
    /// The returned borrow is tied to the underlying heap (`'h`), not to
    /// the context, so it can be held across a later [`TaskCtx::write`]
    /// call — read and write buffers are always distinct objects.
    #[inline]
    pub fn read(&self, d: ObjId) -> &'h [f64] {
        let e = self.slots.get(d.idx()).copied().unwrap_or(NO_SLOT);
        if e == NO_SLOT || e & 1 == 1 {
            std::panic::panic_any(AccessViolation { obj: d, op: AccessOp::Read });
        }
        self.reads[(e >> 1) as usize].1
    }

    /// Mutable buffer of a written object (reads the previous content for
    /// read-modify-write tasks). If the task does not write `d`, panics
    /// with a typed [`AccessViolation`] payload (see [`TaskCtx::read`]).
    #[inline]
    pub fn write(&mut self, d: ObjId) -> &mut [f64] {
        let e = self.slots.get(d.idx()).copied().unwrap_or(NO_SLOT);
        if e == NO_SLOT || e & 1 == 0 {
            std::panic::panic_any(AccessViolation { obj: d, op: AccessOp::Write });
        }
        &mut *self.writes[(e >> 1) as usize].1
    }

    /// Ids of read-only objects, in access-set order.
    pub fn read_ids(&self) -> impl Iterator<Item = ObjId> + '_ {
        self.reads.iter().map(|&(o, _)| ObjId(o))
    }

    /// Ids of written objects, in access-set order.
    pub fn write_ids(&self) -> impl Iterator<Item = ObjId> + '_ {
        self.writes.iter().map(|&(o, _)| ObjId(o))
    }
}

/// Result of a threaded run.
#[derive(Clone, Debug)]
pub struct ThreadedOutcome {
    /// MAPs performed per processor.
    pub maps: Vec<u32>,
    /// Peak units in use per processor (counting accounting, matching the
    /// DES executor and `MEM_REQ`).
    pub peak_mem: Vec<u64>,
    /// Real arena high-water mark per processor (includes fragmentation).
    pub arena_peak: Vec<u64>,
    /// Final contents of every object, gathered from the owners' heaps.
    pub objects: Vec<Vec<f64>>,
    /// Wall-clock duration of the parallel section.
    pub wall: Duration,
    /// Recorded event traces, when [`ThreadedExecutor::with_tracing`] was
    /// enabled at a tier other than [`TraceTier::Off`] (one ring per
    /// processor, decoded from the flat binary recording).
    pub trace: Option<TraceSet>,
    /// Per-processor aggregates replayed from the trace (present exactly
    /// when `trace` is).
    pub metrics: Option<Vec<ProcMetrics>>,
    /// Verdict of the concurrent streaming checker, when
    /// [`ThreadedExecutor::with_streaming_check`] was armed: the same
    /// typed result the post-hoc [`rapid_trace::check`] replay produces.
    pub stream_verdict: Option<Result<TraceReport, Violation>>,
}

/// Comm-backend selection for the threaded executor (see the module
/// docs; both run the identical protocol code behind [`Machine`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Paper-faithful single-slot address mailboxes: a sender whose
    /// destination slot is still occupied blocks in MAP
    /// (service-and-retry) until the receiver drains it.
    Direct,
    /// Native fast path: logical packages coalesce in per-destination
    /// sender-side buffers and travel as one physical batch. Senders
    /// never block; `threshold` is the entry count above which a
    /// destination buffer is opportunistically flushed on send.
    Aggregating {
        /// Entries per destination buffer before an eager flush.
        threshold: usize,
    },
}

/// The threaded executor.
pub struct ThreadedExecutor<'a> {
    g: &'a TaskGraph,
    sched: &'a Schedule,
    plan: RtPlan,
    capacity: u64,
    /// Watchdog: poison the run if no local progress (task completion,
    /// address arrival, or message hand-off) happens within this duration.
    /// Defaults to 30 s, overridable through the `RAPID_WATCHDOG_MS`
    /// environment variable or [`ThreadedExecutor::with_watchdog`].
    pub watchdog: Duration,
    backend: Backend,
    pinning: bool,
    faults: Option<FaultPlan>,
    tracing: Option<TraceConfig>,
    recovery: Option<RecoveryPolicy>,
    streaming: bool,
    /// Rings from the previous traced run, kept for reuse: on this
    /// machine class a multi-MB ring allocation (mmap + munmap per run)
    /// can cost more than the recording itself, so repeated runs on one
    /// executor — benchmarks, feedback loops — pay for their rings once.
    ring_pool: Mutex<Vec<FlatRing>>,
}

impl<'a> ThreadedExecutor<'a> {
    /// Prepare an executor. Requires an owner-compute schedule (every
    /// writer of an object runs on its owner) so that final object values
    /// live in the owners' permanent buffers.
    pub fn new(g: &'a TaskGraph, sched: &'a Schedule, capacity: u64) -> Self {
        assert!(
            rapid_sched::assign::is_owner_compute(g, &sched.assign),
            "threaded executor requires an owner-compute schedule"
        );
        let plan = RtPlan::new(g, sched);
        let watchdog = parse_watchdog_ms(std::env::var("RAPID_WATCHDOG_MS").ok().as_deref());
        ThreadedExecutor {
            g,
            sched,
            plan,
            capacity,
            watchdog,
            backend: Backend::Direct,
            pinning: false,
            faults: None,
            tracing: None,
            recovery: None,
            streaming: false,
            ring_pool: Mutex::new(Vec::new()),
        }
    }

    /// The protocol plan this executor runs. Pair with
    /// [`RtPlan::trace_spec`] to build the [`rapid_trace::ProtocolSpec`]
    /// the invariant checker replays a recorded trace against.
    pub fn plan(&self) -> &RtPlan {
        &self.plan
    }

    /// Record a per-processor event trace during the run (builder form).
    /// Recording goes through the flat binary rings: each worker writes
    /// fixed-width records with a single unsynchronized cursor bump, and
    /// decodes its own ring back into the typed [`rapid_trace::Event`]
    /// schema before its thread returns. The config's
    /// [`TraceTier`] picks how much is captured; `TraceTier::Off`
    /// behaves exactly like not calling this at all (no rings, no
    /// trace in the outcome). Every record site is a single `Option`
    /// branch, so runs without tracing keep the untraced hot path.
    pub fn with_tracing(mut self, cfg: TraceConfig) -> Self {
        self.tracing = Some(cfg);
        self
    }

    /// Check the Theorem-1 obligations *while the run executes* (builder
    /// form): a dedicated checker thread claims each worker's flat ring
    /// via seqlock-style epoch claims, replays the events through the
    /// same [`StreamChecker`] core the post-hoc [`rapid_trace::check`]
    /// uses, and delivers its verdict in
    /// [`ThreadedOutcome::stream_verdict`]. Requires
    /// [`ThreadedExecutor::with_tracing`] at a tier other than
    /// [`TraceTier::Off`]; otherwise the verdict is `None`.
    pub fn with_streaming_check(mut self) -> Self {
        self.streaming = true;
        self
    }

    /// Override the stall watchdog (builder form; takes precedence over
    /// the `RAPID_WATCHDOG_MS` default read by [`ThreadedExecutor::new`]).
    pub fn with_watchdog(mut self, watchdog: Duration) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Select the comm backend (builder form; defaults to
    /// [`Backend::Direct`]).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Shorthand for the aggregating backend with the given flush
    /// threshold (entries per destination buffer; see
    /// [`rapid_machine::machine::DEFAULT_AGG_THRESHOLD`]).
    pub fn with_aggregation(self, threshold: usize) -> Self {
        self.with_backend(Backend::Aggregating { threshold })
    }

    /// Pin each worker thread to a physical core, NUMA-aware (builder
    /// form). When the host has fewer distinct cores than workers the
    /// plan degrades to floating threads, which is always safe.
    pub fn with_pinning(mut self, pinning: bool) -> Self {
        self.pinning = pinning;
        self
    }

    /// Inject a deterministic, seeded fault plan (chaos testing): mailbox
    /// send rejection/delay, RMA put delay, transient allocation failure
    /// and per-task worker jitter. Without a plan every injection site is
    /// a single `Option` branch, so the fault-free hot path is unchanged.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Arm self-healing window recovery (builder form): site-level
    /// retries under the policy's budgets, a checkpoint of every
    /// allocation window's write set, and window-granular rollback &
    /// re-execution on a task panic or access violation. A window still
    /// failing when its budget is exhausted surfaces
    /// [`ExecError::Unrecoverable`] naming the spent budget. Without
    /// this call every recovery site is a single `Option` branch and no
    /// checkpoint is captured — the fault-free hot path is unchanged.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Run the schedule, applying `body` to every task. Object buffers
    /// start zeroed.
    pub fn run<F>(&self, body: F) -> Result<ThreadedOutcome, ExecError>
    where
        F: Fn(TaskId, &mut TaskCtx<'_>) + Sync,
    {
        self.run_with_init(body, |_, _| {})
    }

    /// Run the schedule with owner-side data initialization: before the
    /// protocol starts, each processor fills the permanent buffers of the
    /// objects it owns with `init(obj, buf)` — the RAPID convention where
    /// irregular data is resident before the executor stage (it is *not*
    /// part of the task graph, so it does not constrain DTS slicing).
    ///
    /// Note: `init` affects only the owners' permanent copies. An object
    /// that is read remotely before ever being written would see zeros on
    /// the reading processor; dependence-complete graphs produced by the
    /// builders in this workspace always write an object before any
    /// remote read.
    pub fn run_with_init<F, I>(&self, body: F, init: I) -> Result<ThreadedOutcome, ExecError>
    where
        F: Fn(TaskId, &mut TaskCtx<'_>) + Sync,
        I: Fn(ObjId, &mut [f64]) + Sync,
    {
        // Monomorphize the protocol over the chosen backend: the worker
        // code below is compiled once per machine type with no dynamic
        // dispatch on the hot path.
        let nprocs = self.sched.assign.nprocs;
        match self.backend {
            Backend::Direct => self.run_on(&DirectMachine::new(nprocs), body, init),
            Backend::Aggregating { threshold } => {
                self.run_on(&AggregatingMachine::with_threshold(nprocs, threshold), body, init)
            }
        }
    }

    /// The backend-generic run: everything protocol happens here,
    /// against the [`Machine`]/[`Port`] surface only.
    fn run_on<M, F, I>(&self, machine: &M, body: F, init: I) -> Result<ThreadedOutcome, ExecError>
    where
        M: Machine,
        F: Fn(TaskId, &mut TaskCtx<'_>) + Sync,
        I: Fn(ObjId, &mut [f64]) + Sync,
    {
        let nprocs = self.sched.assign.nprocs;
        let g = self.g;
        let sched = self.sched;

        // Deterministic permanent layout: objects in id order, bump
        // allocated from 0 on the owner's heap.
        let mut perm_off = vec![0u64; g.num_objects()];
        {
            let mut cursor = vec![0u64; nprocs];
            for d in g.objects() {
                let o = sched.assign.owner_of(d) as usize;
                perm_off[d.idx()] = cursor[o];
                cursor[o] += g.obj_size(d);
                if cursor[o] > self.capacity {
                    return Err(ExecError::NonExecutable {
                        proc: o as u32,
                        position: 0,
                        needed: cursor[o],
                        capacity: self.capacity,
                    });
                }
            }
        }

        let heaps: Vec<RmaHeap> = (0..nprocs).map(|_| RmaHeap::new(self.capacity)).collect();
        let flags = FlagBoard::new(self.plan.msgs.len());
        let state = StateBoard::new(nprocs);
        let recov = RecovBoard::new(nprocs);
        let poison = AtomicBool::new(false);
        let error: Mutex<Option<ExecError>> = Mutex::new(None);
        let error = &error;
        let pin_plan: Vec<Option<usize>> =
            if self.pinning { affinity::assign_cores(nprocs) } else { vec![None; nprocs] };

        // Flat binary recording: one ring per worker, sized with ~25%
        // headroom over the configured event capacity so object-list
        // continuation records do not eat into the event budget. Rings
        // from a previous run on this executor are reset and reused when
        // they still fit the configuration — the allocation (a multi-MB
        // mmap/munmap round trip at the default capacity) would otherwise
        // dwarf the recording cost on short runs.
        let tier = self.tracing.map_or(TraceTier::Off, |tc| tc.tier);
        let rings: Option<Vec<FlatRing>> = (tier != TraceTier::Off).then(|| {
            let cap = self.tracing.map_or(0, |tc| tc.capacity);
            let want = cap + cap / 4;
            let mut pool = match self.ring_pool.lock() {
                Ok(mut p) => std::mem::take(&mut *p),
                Err(_) => Vec::new(),
            };
            let fits = pool.len() == nprocs
                && pool.iter().enumerate().all(|(p, r)| {
                    r.proc == p as u32 && r.capacity_records() == FlatRing::rounded_capacity(want)
                });
            if fits {
                for r in &mut pool {
                    r.reset();
                }
                pool
            } else {
                (0..nprocs).map(|p| FlatRing::new(p as u32, want)).collect()
            }
        });
        let rings_ref: Option<&[FlatRing]> = rings.as_deref();

        let epoch = Instant::now();
        let shared = Shared {
            g,
            sched,
            plan: &self.plan,
            capacity: self.capacity,
            perm_off: &perm_off,
            heaps: &heaps,
            flags: &flags,
            machine,
            pin_plan: &pin_plan,
            state: &state,
            poison: &poison,
            watchdog: self.watchdog,
            faults: self.faults.as_ref(),
            rings: rings_ref,
            tier,
            recovery: self.recovery,
            recov: &recov,
            epoch,
            body: &body,
            init: &init,
        };
        let shared = &shared;

        let fail = move |e: ExecError| {
            // First error wins; a poisoned lock just means another worker
            // panicked while reporting — recover and keep its error.
            let mut slot = error.lock().unwrap_or_else(|p| p.into_inner());
            if slot.is_none() {
                *slot = Some(e);
            }
            shared.poison.store(true, AtOrd::Release);
        };
        let fail = &fail;

        // Quiesce signal for the streaming checker: raised after every
        // worker has joined, so its final drain sees quiesced rings.
        let quiesced = AtomicBool::new(false);
        let quiesced = &quiesced;

        type PerProc = (u32, u64, u64, Option<(ProcTrace, ProcMetrics)>);
        let (per_proc, stream_verdict): (Vec<PerProc>, _) = std::thread::scope(|scope| {
            let checker = match (self.streaming, rings_ref) {
                (true, Some(rs)) => Some(scope.spawn(move || {
                    let spec = self.plan.trace_spec(self.capacity);
                    let mut drain = LiveDrain::new(StreamChecker::new(g, sched, spec, tier));
                    while !quiesced.load(AtOrd::Acquire) {
                        if !drain.poll(rs) {
                            // Idle: nothing new published. Sleep rather
                            // than spin so the checker core does not
                            // perturb the measured run.
                            std::thread::sleep(Duration::from_micros(50));
                        }
                    }
                    drain.finish(rs)
                })),
                _ => None,
            };
            let handles: Vec<_> =
                (0..nprocs).map(|p| scope.spawn(move || worker(p, shared, fail))).collect();
            let per_proc = handles
                .into_iter()
                .enumerate()
                .map(|(p, h)| {
                    // Task-body panics are caught inside the worker; a join
                    // error therefore means the worker itself died (an
                    // executor bug). Poison the run and surface it as a
                    // typed error instead of aborting the process.
                    h.join().unwrap_or_else(|payload| {
                        fail(ExecError::WorkerPanicked {
                            proc: p as u32,
                            task: None,
                            payload: panic_payload_str(payload.as_ref()),
                        });
                        (0, 0, 0, None)
                    })
                })
                .collect();
            quiesced.store(true, AtOrd::Release);
            let verdict = checker.and_then(|h| match h.join() {
                Ok(v) => Some(v),
                Err(payload) => {
                    fail(ExecError::WorkerPanicked {
                        proc: nprocs as u32,
                        task: None,
                        payload: panic_payload_str(payload.as_ref()),
                    });
                    None
                }
            });
            (per_proc, verdict)
        });
        let wall = epoch.elapsed();

        if poison.load(AtOrd::Acquire) {
            return Err(error
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .take()
                .unwrap_or(ExecError::Stalled { remaining: 0, snapshot: None }));
        }

        // Gather final object contents from the owners' permanent buffers.
        // SAFETY: all worker threads have joined; no concurrent access.
        let objects = g
            .objects()
            .map(|d| {
                let o = sched.assign.owner_of(d) as usize;
                unsafe { heaps[o].slice(perm_off[d.idx()], g.obj_size(d)) }.to_vec()
            })
            .collect();

        let maps = per_proc.iter().map(|&(m, _, _, _)| m).collect();
        let peak_mem = per_proc.iter().map(|&(_, pk, _, _)| pk).collect();
        let arena_peak = per_proc.iter().map(|&(_, _, ap, _)| ap).collect();
        // Each worker decoded its own ring (and aggregated its metrics)
        // in parallel before its thread returned; a worker that died
        // without reporting still left its ring behind, so decode it
        // here.
        let (trace, metrics) = match &rings {
            Some(rs) => {
                let mut procs = Vec::with_capacity(nprocs);
                let mut ms = Vec::with_capacity(nprocs);
                for (p, (_, _, _, t)) in per_proc.into_iter().enumerate() {
                    let (t, m) = t.unwrap_or_else(|| {
                        let t = decode_ring(&rs[p]);
                        let m = ProcMetrics::from_trace(&t);
                        (t, m)
                    });
                    procs.push(t);
                    ms.push(m);
                }
                (Some(TraceSet::new(procs)), Some(ms))
            }
            None => (None, None),
        };

        // Park the rings for the next run on this executor (skipped if
        // the pool lock was poisoned — the next run simply reallocates).
        if let (Some(rs), Ok(mut pool)) = (rings, self.ring_pool.lock()) {
            *pool = rs;
        }

        Ok(ThreadedOutcome {
            maps,
            peak_mem,
            arena_peak,
            objects,
            wall,
            trace,
            metrics,
            stream_verdict,
        })
    }
}

/// Execute the schedule sequentially (one buffer per object) — the
/// reference the threaded executor is validated against.
pub fn run_sequential<F>(g: &TaskGraph, body: F) -> Vec<Vec<f64>>
where
    F: Fn(TaskId, &mut TaskCtx<'_>),
{
    run_sequential_with_init(g, body, |_, _| {})
}

/// [`run_sequential`] with data initialization (mirrors
/// [`ThreadedExecutor::run_with_init`]).
pub fn run_sequential_with_init<F, I>(g: &TaskGraph, body: F, init: I) -> Vec<Vec<f64>>
where
    F: Fn(TaskId, &mut TaskCtx<'_>),
    I: Fn(ObjId, &mut [f64]),
{
    let mut bufs: Vec<Vec<f64>> = g.objects().map(|d| vec![0.0; g.obj_size(d) as usize]).collect();
    for (i, buf) in bufs.iter_mut().enumerate() {
        init(ObjId(i as u32), buf);
    }
    // `TaskGraphBuilder::build` rejects cycles, so a constructed graph
    // always topo-sorts; return the initialized (untouched) buffers
    // rather than panicking if that invariant ever breaks.
    let Some(order) = rapid_core::algo::topo_sort(g) else { return bufs };
    let mut slots = vec![NO_SLOT; g.num_objects()];
    for t in order {
        // Split-borrow the buffers: writes mutably, reads shared.
        let writes_ids = g.writes(t);
        let mut writes: Vec<(u32, &mut [f64])> = Vec::with_capacity(writes_ids.len());
        let mut reads: Vec<(u32, &[f64])> = Vec::new();
        // SAFETY: object ids are distinct within each set and across the
        // two sets (reads that are also written are dropped below), and
        // `bufs` outlives the ctx; we hand out one &mut per distinct id.
        let base = bufs.as_mut_ptr();
        for &d in writes_ids {
            let slice = unsafe { &mut *base.add(d as usize) };
            writes.push((d, slice.as_mut_slice()));
        }
        for &d in g.reads(t) {
            if writes_ids.binary_search(&d).is_err() {
                let slice = unsafe { &*base.add(d as usize) };
                reads.push((d, slice.as_slice()));
            }
        }
        let mut ctx = TaskCtx::assemble(reads, writes, slots);
        body(t, &mut ctx);
        slots = ctx.dismantle().2;
    }
    bufs
}

/// Everything the workers share by reference — one immutable bundle so
/// the worker signature stays small.
struct Shared<'e, F, I, M> {
    g: &'e TaskGraph,
    sched: &'e Schedule,
    plan: &'e RtPlan,
    capacity: u64,
    perm_off: &'e [u64],
    heaps: &'e [RmaHeap],
    flags: &'e FlagBoard,
    machine: &'e M,
    /// Worker → core plan (`None` = float); all-`None` unless
    /// [`ThreadedExecutor::with_pinning`] was requested.
    pin_plan: &'e [Option<usize>],
    state: &'e StateBoard,
    poison: &'e AtomicBool,
    watchdog: Duration,
    faults: Option<&'e FaultPlan>,
    /// Flat recording rings, one per worker (`None` when tracing is off).
    rings: Option<&'e [FlatRing]>,
    /// Sampling tier the rings record at.
    tier: TraceTier,
    recovery: Option<RecoveryPolicy>,
    recov: &'e RecovBoard,
    /// Epoch of the parallel section; trace timestamps are nanoseconds
    /// since this instant.
    epoch: Instant,
    body: &'e F,
    init: &'e I,
}

/// Lock-free recovery telemetry the workers publish for stall snapshots:
/// per-processor MAP-phase retry / EXE-phase rollback counters plus the
/// most recent recovery. Written only on the (rare) recovery paths;
/// unarmed runs never touch it.
struct RecovBoard {
    /// `[MAP-phase retries, EXE-phase rollbacks]` per processor.
    counts: Vec<[AtomicU32; 2]>,
    /// Packed `proc << 48 | pos << 16 | attempt`; `u64::MAX` = none yet.
    last: AtomicU64,
}

impl RecovBoard {
    fn new(nprocs: usize) -> Self {
        RecovBoard {
            counts: (0..nprocs).map(|_| [AtomicU32::new(0), AtomicU32::new(0)]).collect(),
            last: AtomicU64::new(u64::MAX),
        }
    }

    /// Record one recovery on `p` (relaxed: diagnostics only).
    fn note(&self, p: usize, map_phase: bool, pos: u32, attempt: u32) {
        self.counts[p][usize::from(!map_phase)].fetch_add(1, AtOrd::Relaxed);
        let packed =
            ((p as u64) << 48) | ((pos as u64 & 0xFFFF_FFFF) << 16) | (attempt as u64 & 0xFFFF);
        self.last.store(packed, AtOrd::Relaxed);
    }

    /// `(total MAP retries, total window rollbacks)` across processors.
    fn totals(&self) -> (u32, u32) {
        self.counts.iter().fold((0, 0), |(r, rb), c| {
            (r + c[0].load(AtOrd::Relaxed), rb + c[1].load(AtOrd::Relaxed))
        })
    }

    /// Most recent recovery as `(proc, window position, attempt)`.
    fn last_recovery(&self) -> Option<(u32, u32, u32)> {
        let w = self.last.load(AtOrd::Relaxed);
        (w != u64::MAX).then_some((
            (w >> 48) as u32,
            ((w >> 16) & 0xFFFF_FFFF) as u32,
            w as u32 & 0xFFFF,
        ))
    }
}

/// Worker-owned tracer: the flat binary writer over this processor's
/// ring, plus the run epoch its timestamps are relative to. Wrapped in
/// `Option` everywhere it is consulted, so the untraced hot path pays
/// one predictable branch.
///
/// The clock is *cached*: only protocol-state transitions, MAP
/// boundaries and rollbacks always refresh it (`Instant::elapsed` is a
/// few tens of ns — comparable to the flat record write itself, and
/// much more than that inside a VM). Task boundaries and message
/// receipts refresh only at [`TraceTier::Full`], where per-task
/// timeline spans are worth the clock reads; at Skeleton they reuse the
/// last refreshed timestamp. High-frequency noise records (alloc/free
/// waves, package traffic, CQ retries, fault markers) always reuse it.
/// The dwell metrics depend only on state transitions, and the checker
/// ignores timestamps entirely, so the cache never changes a verdict.
struct Tr<'e> {
    w: FlatWriter<'e>,
    ring: &'e FlatRing,
    t0: Instant,
    last_ts: u64,
}

impl<'e> Tr<'e> {
    fn new(ring: &'e FlatRing, tier: TraceTier, t0: Instant) -> Self {
        Tr { w: ring.writer(tier), ring, t0, last_ts: 0 }
    }

    /// Refresh and return the cached timestamp.
    #[inline]
    fn now(&mut self) -> u64 {
        self.last_ts = self.t0.elapsed().as_nanos() as u64;
        self.last_ts
    }

    /// Does the tier record the Full-only events? Callers skip argument
    /// preparation (object-id collection) when it does not.
    #[inline]
    fn full(&self) -> bool {
        self.w.tier() == TraceTier::Full
    }

    #[inline]
    fn state(&mut self, s: ProtoState) {
        let ts = self.now();
        self.w.state(ts, s);
    }

    #[inline]
    fn map_begin(&mut self, pos: u32) {
        let ts = self.now();
        self.w.map_begin(ts, pos);
    }

    #[inline]
    fn map_end(&mut self, pos: u32, next_map: u32, in_use: u64, arena_high: u64) {
        let ts = self.now();
        self.w.map_end(ts, pos, next_map, in_use, arena_high);
    }

    #[inline]
    fn free(&mut self, obj: u32, units: u64, offset: u64) {
        self.w.free(self.last_ts, obj, units, offset);
    }

    #[inline]
    fn alloc(&mut self, obj: u32, units: u64, offset: u64) {
        self.w.alloc(self.last_ts, obj, units, offset);
    }

    #[inline]
    fn alloc_rollback(&mut self, obj: u32, units: u64) {
        self.w.alloc_rollback(self.last_ts, obj, units);
    }

    #[inline]
    fn window_rollback(&mut self, pos: u32, attempt: u32) {
        let ts = self.now();
        self.w.window_rollback(ts, pos, attempt);
    }

    #[inline]
    fn pkg_send(&mut self, dst: u32, seq: u32, objs: &[u32]) {
        self.w.pkg_send(self.last_ts, dst, seq, objs);
    }

    #[inline]
    fn pkg_recv(&mut self, src: u32, seq: u32, objs: &[u32]) {
        self.w.pkg_recv(self.last_ts, src, seq, objs);
    }

    #[inline]
    fn mailbox_busy(&mut self, dst: u32) {
        self.w.mailbox_busy(self.last_ts, dst);
    }

    #[inline]
    fn send_ok(&mut self, msg: u32) {
        self.w.send_ok(self.last_ts, msg);
    }

    #[inline]
    fn send_suspend(&mut self, msg: u32, missing: u32) {
        self.w.send_suspend(self.last_ts, msg, missing);
    }

    #[inline]
    fn cq_retry(&mut self, msg: u32) {
        self.w.cq_retry(self.last_ts, msg);
    }

    #[inline]
    fn msg_recv(&mut self, msg: u32) {
        let ts = if self.full() { self.now() } else { self.last_ts };
        self.w.msg_recv(ts, msg);
    }

    #[inline]
    fn task_begin(&mut self, task: u32, pos: u32) {
        let ts = if self.full() { self.now() } else { self.last_ts };
        self.w.task_begin(ts, task, pos);
    }

    #[inline]
    fn task_end(&mut self, task: u32) {
        let ts = if self.full() { self.now() } else { self.last_ts };
        self.w.task_end(ts, task);
    }

    #[inline]
    fn fault(&mut self, site: FaultSite) {
        self.w.fault(self.last_ts, site);
    }

    /// Decode this worker's quiesced ring into the typed trace and its
    /// aggregate metrics. Runs on the worker's own thread so the decode
    /// work of all processors proceeds in parallel.
    fn finish(self) -> (ProcTrace, ProcMetrics) {
        // Consuming `self` retires the writer; the ring is quiesced.
        let Tr { ring, .. } = self;
        let t = decode_ring(ring);
        let m = ProcMetrics::from_trace(&t);
        (t, m)
    }
}

/// Progress pacing for a worker's blocking waits: tiered backoff plus the
/// stall watchdog's progress timestamp. The watchdog measures time since
/// the last *local progress* (task completion, address arrival, suspended
/// send completing, or a mailbox hand-off) — not total wall time, so long
/// runs that keep making progress are never falsely poisoned.
struct Pacer {
    backoff: Backoff,
    last_progress: Instant,
}

impl Pacer {
    fn new() -> Self {
        Pacer { backoff: Backoff::new(), last_progress: Instant::now() }
    }

    /// Record progress: reset the backoff tier and the watchdog clock.
    #[inline]
    fn mark(&mut self) {
        self.backoff.reset();
        self.last_progress = Instant::now();
    }

    /// Has the watchdog period elapsed with no progress?
    #[inline]
    fn stalled(&self, watchdog: Duration) -> bool {
        self.last_progress.elapsed() > watchdog
    }

    /// Wait once, escalating the backoff tier. Aggregation-aware: at the
    /// spin→yield boundary the port's buffered packages are flushed —
    /// this worker is about to surrender the core, so anything parked in
    /// its sender-side buffers must move toward its destination first. A
    /// successful flush is watchdog progress.
    #[inline]
    fn wait<P: Port>(&mut self, port: &mut P) {
        let mut flushed = false;
        self.backoff.wait_flushing(|| flushed = port.flush());
        if flushed {
            self.mark();
        }
    }
}

/// Per-worker communication state: the dense address tables plus the
/// indexed suspended-send queue, built around this worker's comm
/// [`Port`].
struct Net<'e, P: Port> {
    p: usize,
    nobj: usize,
    plan: &'e RtPlan,
    g: &'e TaskGraph,
    heaps: &'e [RmaHeap],
    flags: &'e FlagBoard,
    port: P,
    /// Object id → offset of its buffer on this processor ([`NO_ADDR`]
    /// when not resident). Permanent entries are seeded once; volatile
    /// entries are set/cleared by MAP alloc/free.
    local: Vec<u64>,
    /// `proc * nobj + obj` → offset of the object's buffer on `proc`.
    /// Permanent entries are seeded from the deterministic layout;
    /// volatile entries arrive via RA packages.
    known: Vec<u64>,
    /// `waiters[obj]`: suspended message ids parked on `obj`'s address.
    /// Each suspended message is parked in exactly one list (its first
    /// missing object).
    waiters: Vec<Vec<u32>>,
    /// Scratch: messages woken by the current RA batch.
    woken: Vec<u32>,
    /// Number of currently suspended sends.
    suspended: usize,
    /// Deterministic fault injector for this processor, when chaos runs
    /// enable one ([`ThreadedExecutor::with_faults`]).
    faults: Option<ProcFaults>,
    /// Event recorder, when [`ThreadedExecutor::with_tracing`] is on.
    tr: Option<Tr<'e>>,
    /// Scratch object-id list for Full-tier `PkgRecv` records (reused,
    /// no allocation in steady state).
    obj_scratch: Vec<u32>,
    /// `pkg_send_seq[dst]`: address packages deposited toward `dst` so
    /// far (trace sequence numbers; only maintained while tracing).
    pkg_send_seq: Vec<u32>,
    /// `pkg_recv_seq[src]`: address packages drained from `src` so far.
    pkg_recv_seq: Vec<u32>,
    /// `sent[msg]`: message already completed (flag raised). Maintained
    /// only when window recovery is armed (empty otherwise): a rolled
    /// back window re-enters its SND states, and a completed message
    /// must not be re-sent — the bytes would be identical, but arrival
    /// flags and the receiver's consumption are one-shot.
    sent: Vec<bool>,
}

impl<'e, P: Port> Net<'e, P> {
    fn new<F, I, M>(p: usize, sh: &Shared<'e, F, I, M>, port: P) -> Self
    where
        M: Machine,
    {
        let nobj = sh.g.num_objects();
        let nprocs = sh.sched.assign.nprocs;
        let mut local = vec![NO_ADDR; nobj];
        let mut known = vec![NO_ADDR; nprocs * nobj];
        // Seed both tables with the globally-known permanent layout.
        for d in sh.g.objects() {
            let o = sh.sched.assign.owner_of(d) as usize;
            known[o * nobj + d.idx()] = sh.perm_off[d.idx()];
            if o == p {
                local[d.idx()] = sh.perm_off[d.idx()];
            }
        }
        Net {
            p,
            nobj,
            plan: sh.plan,
            g: sh.g,
            heaps: sh.heaps,
            flags: sh.flags,
            port,
            local,
            known,
            waiters: vec![Vec::new(); nobj],
            woken: Vec::new(),
            suspended: 0,
            faults: sh.faults.map(|f| f.for_proc(p)),
            tr: None,
            obj_scratch: Vec::new(),
            pkg_send_seq: vec![0; nprocs],
            pkg_recv_seq: vec![0; nprocs],
            sent: Vec::new(),
        }
    }

    /// Offset of object `d`'s buffer on this processor.
    #[inline]
    fn resolve(&self, d: ObjId) -> u64 {
        let off = self.local[d.idx()];
        debug_assert_ne!(off, NO_ADDR, "volatile {d:?} not allocated on P{}", self.p);
        off
    }

    /// Try to send message `mid`; on failure returns the id of the first
    /// object whose destination address is still unknown.
    fn try_send(&mut self, mid: u32) -> Result<(), u32> {
        let msg = &self.plan.msgs[mid as usize];
        let base = msg.dst_proc as usize * self.nobj;
        for &d in &msg.objs {
            if self.known[base + d.idx()] == NO_ADDR {
                return Err(d.0);
            }
        }
        // Injected put delay: hold this message back so it lands late and
        // reordered relative to the fault-free interleaving.
        if let Some(f) = self.faults.as_mut() {
            if let Some(d) = f.put_delay() {
                if let Some(tr) = self.tr.as_mut() {
                    tr.fault(FaultSite::PutDelay);
                }
                std::thread::sleep(d);
            }
        }
        for &d in &msg.objs {
            let len = self.g.obj_size(d);
            let remote = self.known[base + d.idx()];
            let local = self.resolve(d);
            // SAFETY (module protocol): we produced this object (our task
            // wrote it and no later writer has run — dependence
            // completeness), and the destination buffer is exclusively
            // ours to fill until we raise the flag.
            unsafe {
                let src = self.heaps[self.p].slice(local, len);
                self.heaps[msg.dst_proc as usize].put(remote, src);
            }
        }
        self.flags.raise(mid as usize);
        if let Some(s) = self.sent.get_mut(mid as usize) {
            *s = true;
        }
        if let Some(tr) = self.tr.as_mut() {
            tr.send_ok(mid);
        }
        Ok(())
    }

    /// SND: send `mid` now, or park it on its first missing address.
    /// No-op for a message that already completed (only possible when a
    /// recovered window re-runs its SND states).
    fn send_or_suspend(&mut self, mid: u32) {
        if self.sent.get(mid as usize).copied().unwrap_or(false) {
            return;
        }
        if let Err(missing) = self.try_send(mid) {
            if let Some(tr) = self.tr.as_mut() {
                tr.send_suspend(mid, missing);
            }
            self.waiters[missing as usize].push(mid);
            self.suspended += 1;
        }
    }

    /// RA + incremental CQ: drain incoming address packages (one batched
    /// callback per source, covering every logical package the run
    /// carries), then retry exactly the parked sends the new addresses
    /// may unblock. Every service round is also a flush opportunity for
    /// packages buffered in this worker's port (eventual delivery under
    /// aggregation). Returns `true` if any package arrived, any buffered
    /// batch was handed off, or any suspended send completed.
    fn service(&mut self) -> bool {
        let nobj = self.nobj;
        let known = &mut self.known;
        let waiters = &mut self.waiters;
        let woken = &mut self.woken;
        let tr = &mut self.tr;
        let recv_seq = &mut self.pkg_recv_seq;
        let scratch = &mut self.obj_scratch;
        let drained = self.port.drain_batched(|src, entries, seg_ends| {
            let base = src * nobj;
            for e in entries {
                known[base + e.obj as usize] = e.offset;
                woken.append(&mut waiters[e.obj as usize]);
            }
            if let Some(tr) = tr.as_mut() {
                // One PkgRecv per *logical* package: a physical batch
                // replays exactly like the unbatched package sequence.
                // PkgRecv is a Full-only record; at Skeleton only the
                // sequence numbers advance (the send side carries them).
                let full = tr.full();
                let mut start = 0usize;
                for &end in seg_ends {
                    let seq = recv_seq[src];
                    recv_seq[src] = seq + 1;
                    if full {
                        scratch.clear();
                        scratch.extend(entries[start..end as usize].iter().map(|e| e.obj));
                        tr.pkg_recv(src as u32, seq, scratch);
                    }
                    start = end as usize;
                }
            }
        });
        let mut progress = drained > 0;
        if self.port.pending() > 0 && self.port.flush() {
            progress = true;
        }
        while let Some(mid) = self.woken.pop() {
            if let Some(tr) = self.tr.as_mut() {
                tr.cq_retry(mid);
            }
            match self.try_send(mid) {
                Ok(()) => {
                    self.suspended -= 1;
                    progress = true;
                }
                // Still blocked: re-park on the next missing address.
                Err(missing) => self.waiters[missing as usize].push(mid),
            }
        }
        progress
    }
}

/// Per-thread worker: returns `(maps, peak_units, arena_peak, trace)`,
/// the trace already decoded from this worker's flat ring (with its
/// aggregate metrics) so the decode work runs in parallel across
/// workers.
fn worker<F, I, M>(
    p: usize,
    sh: &Shared<'_, F, I, M>,
    fail: &(impl Fn(ExecError) + Sync),
) -> (u32, u64, u64, Option<(ProcTrace, ProcMetrics)>)
where
    F: Fn(TaskId, &mut TaskCtx<'_>) + Sync,
    I: Fn(ObjId, &mut [f64]) + Sync,
    M: Machine,
{
    let g = sh.g;
    let sched = sh.sched;
    let plan = sh.plan;
    let heaps = sh.heaps;
    let flags = sh.flags;

    // Pin before touching any heap memory so first-touch pages land on
    // this worker's NUMA node. Failure leaves the thread floating.
    if let Some(cpu) = sh.pin_plan[p] {
        let _ = affinity::pin_current_thread(cpu);
    }

    let mut tr = sh.rings.map(|rs| Tr::new(&rs[p], sh.tier, sh.epoch));
    if let Some(tr) = tr.as_mut() {
        tr.state(ProtoState::Setup);
    }
    sh.state.publish(p, WorkerState::Setup, 0, 0);
    let mut arena = Arena::new(sh.capacity);
    // Reproduce the deterministic permanent layout and load resident data.
    for d in g.objects() {
        if sched.assign.owner_of(d) as usize == p {
            match arena.alloc(g.obj_size(d)) {
                Ok(off) => {
                    debug_assert_eq!(off, sh.perm_off[d.idx()]);
                    // SAFETY: setup phase — no other thread touches our
                    // permanent buffers before the protocol starts (the
                    // first remote put needs an address package or a
                    // write by our own tasks).
                    (sh.init)(d, unsafe { heaps[p].slice_mut(off, g.obj_size(d)) });
                }
                Err(_) => {
                    fail(ExecError::NonExecutable {
                        proc: p as u32,
                        position: 0,
                        needed: plan.perm_units[p],
                        capacity: sh.capacity,
                    });
                    return (0, 0, arena.peak(), tr.map(Tr::finish));
                }
            }
        }
    }

    let mut planner = MapPlanner::new(p as u32, sh.capacity, plan.perm_units[p]);
    let mut net = Net::new(p, sh, sh.machine.port(p));
    net.tr = tr;

    // Pooled task-context parts (no allocation in steady state).
    let mut ctx_reads: Vec<(u32, &[f64])> = Vec::new();
    let mut ctx_writes: Vec<(u32, &mut [f64])> = Vec::new();
    let mut slots = vec![NO_SLOT; g.num_objects()];
    // Reusable address-package buffer for MAP notifications, plus the
    // object-id shadow the tracer records after the (buffer-consuming)
    // hand-off completes.
    let mut pkg_buf: Vec<AddrEntry> = Vec::new();
    let mut pkg_ids: Vec<u32> = Vec::new();

    let order = &sched.order[p];
    let mut pos: u32 = 0;
    let mut next_map: u32 = 0;
    let mut pacer = Pacer::new();

    // Self-healing state (armed by [`ThreadedExecutor::with_recovery`];
    // everything below stays empty — and every consulting site a single
    // predictable branch — on unarmed runs).
    let recovery = sh.recovery;
    let mut window_start: u32 = 0;
    let mut window_attempts: u32 = 0;
    // Pre-window contents of the current window's write set, for
    // EXE-phase rollback: `(obj, units, offset, start in ckpt_data)`.
    let mut ckpt: Vec<(u32, u64, u64, usize)> = Vec::new();
    let mut ckpt_data: Vec<f64> = Vec::new();
    let mut ckpt_seen: Vec<bool> =
        if recovery.is_some() { vec![false; g.num_objects()] } else { Vec::new() };
    if recovery.is_some() {
        net.sent = vec![false; plan.msgs.len()];
    }

    macro_rules! bail {
        () => {
            return (planner.maps(), planner.peak(), arena.peak(), net.tr.take().map(Tr::finish))
        };
    }

    macro_rules! spin_service {
        () => {
            if sh.poison.load(AtOrd::Acquire) {
                bail!();
            }
            if net.service() {
                pacer.mark();
            } else {
                if pacer.stalled(sh.watchdog) {
                    fail(ExecError::Stalled {
                        remaining: order.len() - pos as usize,
                        snapshot: Some(Box::new(build_snapshot(
                            p,
                            sh,
                            net.tr.as_ref().map(|t| t.ring),
                        ))),
                    });
                    bail!();
                }
                pacer.wait(&mut net.port);
            }
        };
    }

    while (pos as usize) < order.len() {
        // MAP state.
        if pos == next_map {
            // A new allocation window begins here: it gets a fresh
            // re-execution budget (EXE-phase rollbacks never rewind
            // across a MAP, so the previous window's spend is settled).
            window_start = pos;
            window_attempts = 0;
            sh.state.publish(p, WorkerState::Map, pos, net.suspended as u32);
            if let Some(tr) = net.tr.as_mut() {
                tr.state(ProtoState::Map);
                tr.map_begin(pos);
            }
            let mut action = match planner.run_map(g, sched, plan, pos) {
                Ok(a) => a,
                Err(e) => {
                    fail(e);
                    bail!();
                }
            };
            for d in &action.frees {
                let off = net.local[d.idx()];
                if off == NO_ADDR {
                    fail(ExecError::Internal {
                        proc: p as u32,
                        detail: format!("MAP free of {d:?} but no live buffer is recorded"),
                    });
                    bail!();
                }
                net.local[d.idx()] = NO_ADDR;
                if let Err(e) = arena.free(off) {
                    fail(ExecError::Internal {
                        proc: p as u32,
                        detail: format!("MAP free of {d:?} at offset {off} rejected: {e:?}"),
                    });
                    bail!();
                }
                if let Some(tr) = net.tr.as_mut() {
                    tr.free(d.0, g.obj_size(*d), off);
                }
            }
            // Place the planned allocations in the real arena. The
            // counting planner guarantees the units fit, but a first-fit
            // arena can still be transiently fragmented (and the fault
            // layer can pretend it is). Degradation ladder: retry with
            // bounded backoff while servicing RA/CQ, then truncate the
            // allocation window at the first *lookahead* position that
            // cannot be placed — those objects roll back and are
            // re-planned by the (now earlier) next MAP, whose free wave
            // may have coalesced room. Only the task at `pos` itself
            // failing to place is a hard `Fragmented` error.
            let mut truncated = false;
            let alloc_budget = recovery.map_or(FRAG_RETRIES, |r| r.retry.alloc_attempts);
            'wave: loop {
                // Index of the alloc whose failure is *hard* — the task
                // at `pos` itself cannot be placed — this wave attempt.
                let mut hard_fail: Option<usize> = None;
                for (ai, &d) in action.allocs.iter().enumerate() {
                    let size = g.obj_size(d);
                    let mut retry = Retry::new(alloc_budget);
                    let off = loop {
                        let injected = net.faults.as_mut().is_some_and(|f| f.alloc_fails());
                        if injected {
                            if let Some(tr) = net.tr.as_mut() {
                                tr.fault(FaultSite::AllocFail);
                            }
                        } else {
                            match arena.alloc(size) {
                                Ok(off) => break Some(off),
                                Err(ArenaError::Fragmented { .. }) => {}
                                Err(_) => {
                                    fail(ExecError::NonExecutable {
                                        proc: p as u32,
                                        position: pos,
                                        needed: planner.in_use(),
                                        capacity: sh.capacity,
                                    });
                                    bail!();
                                }
                            }
                        }
                        if sh.poison.load(AtOrd::Acquire) {
                            bail!();
                        }
                        // Keep servicing RA/CQ between attempts so the
                        // system keeps evolving while we wait (Theorem 1).
                        if net.service() {
                            pacer.mark();
                        }
                        if !retry.again() {
                            break None;
                        }
                    };
                    match off {
                        Some(off) => {
                            net.local[d.idx()] = off;
                            if let Some(tr) = net.tr.as_mut() {
                                tr.alloc(d.0, size, off);
                            }
                        }
                        None if action.alloc_pos[ai] == pos => {
                            hard_fail = Some(ai);
                            break;
                        }
                        None => {
                            // The failing object and everything after it
                            // were never placed, so no Alloc events were
                            // recorded for them — the trace replay's
                            // accounting stays consistent with the planner
                            // rollback without any compensating event.
                            for &dd in &action.allocs[ai..] {
                                planner.rollback_alloc(g, dd);
                            }
                            action.next_map = action.alloc_pos[ai];
                            truncated = true;
                            break;
                        }
                    }
                }
                let Some(ai) = hard_fail else { break 'wave };
                let requested = g.obj_size(action.allocs[ai]);
                let frag = ExecError::Fragmented {
                    proc: p as u32,
                    requested,
                    largest: arena.largest_free(),
                };
                match recovery.map(|r| r.retry.window_attempts) {
                    Some(budget) if window_attempts < budget => {
                        // MAP-phase window retry: undo this attempt's
                        // arena placements and re-run the wave. The
                        // planner accounting is untouched (the same
                        // objects are re-placed below) and the arena
                        // free-list restores, so the re-placed offsets —
                        // and hence the recovered trace — depend only on
                        // the fault seed and the plan. No task ran yet,
                        // so no content checkpoint is needed here.
                        window_attempts += 1;
                        for &dd in &action.allocs[..ai] {
                            let off = net.local[dd.idx()];
                            if off == NO_ADDR {
                                continue;
                            }
                            net.local[dd.idx()] = NO_ADDR;
                            if let Err(e) = arena.free(off) {
                                fail(ExecError::Internal {
                                    proc: p as u32,
                                    detail: format!(
                                        "recovery rollback of {dd:?} at offset {off} rejected: {e:?}"
                                    ),
                                });
                                bail!();
                            }
                            if let Some(tr) = net.tr.as_mut() {
                                tr.alloc_rollback(dd.0, g.obj_size(dd));
                            }
                        }
                        if let Some(tr) = net.tr.as_mut() {
                            tr.window_rollback(pos, window_attempts);
                        }
                        sh.recov.note(p, true, pos, window_attempts);
                        // One service round between attempts: an injected
                        // fault stream drains its budget, a genuinely
                        // fragmented arena gets a chance to coalesce.
                        if net.service() {
                            pacer.mark();
                        }
                        continue 'wave;
                    }
                    Some(budget) => {
                        fail(ExecError::Unrecoverable {
                            proc: p as u32,
                            pos,
                            attempts: budget,
                            cause: Box::new(frag),
                        });
                        bail!();
                    }
                    None => {
                        fail(frag);
                        bail!();
                    }
                }
            }
            if truncated {
                // Rolled-back objects have no address; their notifications
                // are re-issued by the MAP that re-plans them.
                action.notifies.retain(|n| net.local[n.obj as usize] != NO_ADDR);
            }
            next_map = action.next_map;
            // Fill in offsets; notifications arrive pre-sorted by
            // (destination, object), so one linear walk assembles one
            // package per destination.
            for n in &mut action.notifies {
                n.offset = net.local[n.obj as usize];
            }
            let mut i = 0;
            while i < action.notifies.len() {
                let dst = action.notifies[i].dst;
                pkg_buf.clear();
                while i < action.notifies.len() && action.notifies[i].dst == dst {
                    let n = action.notifies[i];
                    pkg_buf.push(AddrEntry { obj: n.obj, offset: n.offset });
                    i += 1;
                }
                let tracing_pkg = net.tr.is_some();
                if tracing_pkg {
                    pkg_ids.clear();
                    pkg_ids.extend(pkg_buf.iter().map(|e| e.obj));
                }
                if let Some(f) = net.faults.as_mut() {
                    if let Some(delay) = f.mailbox_delay() {
                        if let Some(tr) = net.tr.as_mut() {
                            tr.fault(FaultSite::MailboxDelay);
                        }
                        std::thread::sleep(delay);
                    }
                }
                let mut reported_busy = false;
                loop {
                    // An injected rejection is handled exactly like a slot
                    // the receiver has not drained yet.
                    let rejected = net.faults.as_mut().is_some_and(|f| f.mailbox_reject());
                    if rejected {
                        if let Some(tr) = net.tr.as_mut() {
                            tr.fault(FaultSite::MailboxReject);
                        }
                    } else {
                        // Delivered and Buffered both complete the logical
                        // hand-off (the port owns the entries from here);
                        // only Busy — the direct backend's full slot —
                        // makes this MAP block and service-retry.
                        match net.port.send_package(dst as usize, &mut pkg_buf) {
                            SendOutcome::Delivered | SendOutcome::Buffered => break,
                            SendOutcome::Busy => {}
                        }
                    }
                    if !reported_busy {
                        reported_busy = true;
                        if let Some(tr) = net.tr.as_mut() {
                            tr.mailbox_busy(dst);
                        }
                    }
                    // Blocked in MAP: keep servicing RA/CQ so the system
                    // keeps evolving (Theorem 1).
                    spin_service!();
                }
                if tracing_pkg {
                    let seq = net.pkg_send_seq[dst as usize];
                    net.pkg_send_seq[dst as usize] = seq + 1;
                    if let Some(tr) = net.tr.as_mut() {
                        tr.pkg_send(dst, seq, &pkg_ids);
                    }
                }
                pacer.mark();
            }
            // Hand any coalesced batches over eagerly: under aggregation
            // the sends above never block, so one flush attempt at MAP
            // end bounds notification latency by the MAP itself without
            // re-introducing the per-package blocking of the direct
            // backend (a busy slot just leaves the batch parked for the
            // service-loop and pre-park flushes).
            if net.port.pending() > 0 {
                net.port.flush();
            }
            if let Some(tr) = net.tr.as_mut() {
                tr.map_end(pos, next_map, planner.in_use(), arena.peak());
            }
            // Photograph the window's write set before any of its tasks
            // run: bodies may read-modify-write their local permanents,
            // so EXE-phase rollback must restore pre-window contents.
            // Volatiles are deliberately *not* captured — they are filled
            // by remote puts that survive a rollback (flags stay raised),
            // and this worker's tasks never write them (owner-compute).
            if recovery.is_some() {
                ckpt.clear();
                ckpt_data.clear();
                let end = (next_map as usize).min(order.len());
                for &wt in &order[pos as usize..end] {
                    for &w in g.writes(wt) {
                        if ckpt_seen[w as usize] {
                            continue;
                        }
                        ckpt_seen[w as usize] = true;
                        let d = ObjId(w);
                        let off = net.local[d.idx()];
                        let len = g.obj_size(d);
                        let start = ckpt_data.len();
                        // SAFETY: our own permanent buffer (owner-compute
                        // makes this worker its only writer), read before
                        // any task of this window has run.
                        ckpt_data.extend_from_slice(unsafe { heaps[p].slice(off, len) });
                        ckpt.push((w, len, off, start));
                    }
                }
                for &(w, ..) in &ckpt {
                    ckpt_seen[w as usize] = false;
                }
            }
        }

        let t = order[pos as usize];
        // REC state: wait for every incoming message.
        sh.state.publish(p, WorkerState::Rec, pos, net.suspended as u32);
        if let Some(tr) = net.tr.as_mut() {
            tr.state(ProtoState::Rec);
        }
        for &mid in &plan.in_msgs[t.idx()] {
            if flags.is_raised(mid as usize) {
                if let Some(tr) = net.tr.as_mut() {
                    tr.msg_recv(mid);
                }
                continue; // fast path: already arrived
            }
            while !flags.is_raised(mid as usize) {
                spin_service!();
            }
            if let Some(tr) = net.tr.as_mut() {
                tr.msg_recv(mid);
            }
            pacer.mark();
        }

        // EXE state.
        {
            sh.state.publish(p, WorkerState::Exe, pos, net.suspended as u32);
            if let Some(tr) = net.tr.as_mut() {
                tr.state(ProtoState::Exe);
            }
            // Injected worker stall: desynchronizes the interleaving.
            if let Some(f) = net.faults.as_mut() {
                if let Some(stall) = f.task_jitter() {
                    if let Some(tr) = net.tr.as_mut() {
                        tr.fault(FaultSite::TaskJitter);
                    }
                    std::thread::sleep(stall);
                }
            }
            let writes_ids = g.writes(t);
            for &d in writes_ids {
                let d = ObjId(d);
                let off = net.resolve(d);
                // SAFETY (module protocol): this task is the unique writer
                // of `d` at this point of the dependence-complete
                // schedule; readers have either consumed earlier versions
                // or are ordered after us.
                ctx_writes.push((d.0, unsafe { heaps[p].slice_mut(off, g.obj_size(d)) }));
            }
            for &d in g.reads(t) {
                if writes_ids.binary_search(&d).is_ok() {
                    continue;
                }
                let d = ObjId(d);
                let off = net.resolve(d);
                // SAFETY: arrival flags have been observed with Acquire;
                // no writer may touch this buffer until tasks ordered
                // after us run.
                ctx_reads.push((d.0, unsafe { heaps[p].slice(off, g.obj_size(d)) }));
            }
            let mut ctx = TaskCtx::assemble(
                std::mem::take(&mut ctx_reads),
                std::mem::take(&mut ctx_writes),
                std::mem::take(&mut slots),
            );
            if let Some(tr) = net.tr.as_mut() {
                tr.task_begin(t.0, pos);
            }
            // A panicking body must not abort the process: catch it at the
            // task boundary, poison the run, and let every worker exit
            // through the normal failure path. An [`AccessViolation`]
            // payload (raised by the ctx accessors) keeps its type.
            let body_ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                (sh.body)(t, &mut ctx);
            }));
            // Reclaim the pooled context parts (and reset the slot table)
            // on both paths — a recovered window re-assembles contexts.
            let body_err = body_ok.err();
            (ctx_reads, ctx_writes, slots) = ctx.dismantle();
            if let Some(payload) = body_err {
                let cause = match payload.downcast::<AccessViolation>() {
                    Ok(v) => {
                        ExecError::AccessViolation { proc: p as u32, task: t, obj: v.obj, op: v.op }
                    }
                    Err(other) => ExecError::WorkerPanicked {
                        proc: p as u32,
                        task: Some(t),
                        payload: panic_payload_str(other.as_ref()),
                    },
                };
                let Some(pol) = recovery else {
                    fail(cause);
                    bail!();
                };
                if window_attempts >= pol.retry.window_attempts {
                    fail(ExecError::Unrecoverable {
                        proc: p as u32,
                        pos: window_start,
                        attempts: window_attempts,
                        cause: Box::new(cause),
                    });
                    bail!();
                }
                window_attempts += 1;
                // Quiesce before restoring: a send suspended (or a
                // package batch still buffered) earlier in this window
                // must complete *now*, while the written buffers hold
                // the values it is supposed to carry — a put firing
                // after the restore would ship pre-window bytes.
                while net.suspended > 0 || net.port.pending() > 0 {
                    spin_service!();
                }
                // Restore the pre-window contents of the window's write
                // set; everything else (volatile allocations, arrival
                // flags, received addresses, completed sends) is still
                // valid and is deliberately kept.
                for &(_, len, off, start) in &ckpt {
                    // SAFETY: the same exclusive local permanents the
                    // checkpoint read; no remote writer exists
                    // (owner-compute) and no local task is running.
                    unsafe { heaps[p].slice_mut(off, len) }
                        .copy_from_slice(&ckpt_data[start..start + len as usize]);
                }
                if let Some(tr) = net.tr.as_mut() {
                    tr.window_rollback(window_start, window_attempts);
                }
                sh.recov.note(p, false, window_start, window_attempts);
                pos = window_start;
                pacer.mark();
                continue;
            }
            if let Some(tr) = net.tr.as_mut() {
                tr.task_end(t.0);
            }
        }

        // SND state.
        sh.state.publish(p, WorkerState::Snd, pos, net.suspended as u32);
        if let Some(tr) = net.tr.as_mut() {
            tr.state(ProtoState::Snd);
        }
        for &mid in &plan.out_msgs[t.idx()] {
            net.send_or_suspend(mid);
        }
        if net.service() {
            pacer.mark();
        }
        pos += 1;
        pacer.mark();
    }

    // END state: drain the suspended queue AND this port's aggregation
    // buffers — a buffered address package that never got flushed would
    // strand a peer's suspended send forever, so END may not retire
    // while `pending() > 0` (the aggregation half of the Theorem-1
    // obligations).
    if let Some(tr) = net.tr.as_mut() {
        tr.state(ProtoState::End);
    }
    while net.suspended > 0 || net.port.pending() > 0 {
        sh.state.publish(p, WorkerState::End, pos, net.suspended as u32);
        spin_service!();
    }
    sh.state.publish(p, WorkerState::Done, pos, 0);
    if let Some(tr) = net.tr.as_mut() {
        tr.state(ProtoState::Done);
    }
    (planner.maps(), planner.peak(), arena.peak(), net.tr.take().map(Tr::finish))
}

/// Assemble the stall diagnostic from the shared introspection surfaces:
/// every worker's published state, suspended-send depth, and the
/// occupancy of every address-mailbox slot — plus, when the reporting
/// worker traces, the tail of its event ring (what it was doing right
/// before the silence). Called (rarely — watchdog expiry only) by the
/// worker that detected the stall.
fn build_snapshot<F, I, M: Machine>(
    reporter: usize,
    sh: &Shared<'_, F, I, M>,
    ring: Option<&FlatRing>,
) -> StallSnapshot {
    // The reporter's own writer is idle while it builds this snapshot,
    // so decoding its ring here (rare path: watchdog expiry only) sees a
    // quiesced ring.
    let trace: Option<ProcTrace> = ring.map(decode_ring);
    let nprocs = sh.sched.assign.nprocs;
    let board = sh.machine.board();
    let procs = (0..nprocs)
        .map(|q| {
            let (state, pos, suspended) = sh.state.read(q);
            let mailbox_full_to = board
                .map(|b| {
                    (0..nprocs)
                        .filter(|&r| r != q && b.slot(q, r).is_full())
                        .map(|r| r as u32)
                        .collect()
                })
                .unwrap_or_default();
            ProcDiag {
                proc: q as u32,
                state,
                pos,
                order_len: sh.sched.order[q].len() as u32,
                suspended_sends: suspended,
                mailbox_full_to,
                buffered_pkgs: sh.machine.pending_hint(q) as u32,
            }
        })
        .collect();
    let recent_events = trace
        .as_ref()
        .map(|t| {
            t.tail(16)
                .into_iter()
                .map(|(ts, ev)| format!("{:.3}ms {ev:?}", ts as f64 / 1e6))
                .collect()
        })
        .unwrap_or_default();
    let (recovery_retries, recovery_rollbacks) = sh.recov.totals();
    StallSnapshot {
        reporter: reporter as u32,
        watchdog_ms: sh.watchdog.as_millis() as u64,
        msgs_arrived: sh.flags.raised_count(),
        msgs_total: sh.plan.msgs.len(),
        procs,
        recent_events,
        recovery_retries,
        recovery_rollbacks,
        last_recovery: sh.recov.last_recovery(),
        quarantined: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_core::fixtures;
    use rapid_core::memreq::min_mem;
    use rapid_core::schedule::CostModel;

    /// A deterministic task body: every written buffer cell becomes
    /// `task_id + 1 + Σ(read buffers) + previous content`.
    fn test_body(t: TaskId, ctx: &mut TaskCtx<'_>) {
        let acc: f64 = ctx.reads.iter().flat_map(|(_, s)| s.iter()).sum();
        for (_, w) in ctx.writes.iter_mut() {
            for x in w.iter_mut() {
                *x += t.0 as f64 + 1.0 + acc;
            }
        }
    }

    #[test]
    fn figure2_threaded_matches_sequential() {
        let g = fixtures::figure2_dag();
        for sched in [fixtures::figure2_schedule_b(), fixtures::figure2_schedule_c()] {
            let exec = ThreadedExecutor::new(&g, &sched, 64);
            let out = exec.run(test_body).unwrap();
            let reference = run_sequential(&g, test_body);
            assert_eq!(out.objects, reference);
            assert_eq!(out.maps, vec![1, 1]);
        }
    }

    #[test]
    fn figure2_threaded_at_exact_min_mem() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let mm = min_mem(&g, &sched).min_mem;
        let exec = ThreadedExecutor::new(&g, &sched, mm);
        let out = exec.run(test_body).unwrap();
        assert_eq!(out.objects, run_sequential(&g, test_body));
        assert!(out.peak_mem.iter().all(|&pk| pk <= mm));
        assert!(out.maps.iter().any(|&m| m > 1), "tight memory forces extra MAPs");
    }

    #[test]
    fn below_min_mem_fails_cleanly() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let mm = min_mem(&g, &sched).min_mem;
        let exec = ThreadedExecutor::new(&g, &sched, mm - 1);
        match exec.run(test_body) {
            Err(ExecError::NonExecutable { .. }) => {}
            other => panic!("expected NonExecutable, got {other:?}"),
        }
    }

    #[test]
    fn random_graph_stress_at_min_mem() {
        // The deadlock-freedom (Theorem 1) stress: random irregular graphs
        // on 4 threads at exactly MIN_MEM, MPO order.
        for seed in 0..8u64 {
            let g = fixtures::random_irregular_graph(seed, &fixtures::RandomGraphSpec::default());
            let owner = rapid_sched::assign::cyclic_owner_map(g.num_objects(), 4);
            let assign = rapid_sched::assign::owner_compute_assignment(&g, &owner, 4);
            let sched = rapid_sched::mpo::mpo_order(&g, &assign, &CostModel::unit());
            let mm = min_mem(&g, &sched).min_mem;
            let exec = ThreadedExecutor::new(&g, &sched, mm);
            match exec.run(test_body) {
                Ok(out) => {
                    assert_eq!(
                        out.objects,
                        run_sequential(&g, test_body),
                        "seed {seed}: results differ"
                    );
                }
                // A first-fit arena may fragment at exactly MIN_MEM with
                // mixed object sizes; that is a resource failure, not a
                // protocol failure.
                Err(ExecError::Fragmented { .. }) => {}
                Err(e) => panic!("seed {seed}: {e}"),
            }
        }
    }

    #[test]
    fn sequential_reference_accumulates_updates() {
        // w(d)=1; two chained updates add 2 and 3 => 6 per cell... the
        // body adds t+1 each time: t0 writes 1, t1 adds 2, t2 adds 3.
        let mut b = rapid_core::graph::TaskGraphBuilder::new();
        let d = b.add_object(3);
        let t0 = b.add_task(1.0, &[], &[d]);
        let t1 = b.add_task(1.0, &[], &[d]);
        let t2 = b.add_task(1.0, &[], &[d]);
        b.add_edge(t0, t1);
        b.add_edge(t1, t2);
        let g = b.build().unwrap();
        let out = run_sequential(&g, test_body);
        assert_eq!(out[0], vec![6.0, 6.0, 6.0]);
        let _ = (t0, t1, t2);
    }

    #[test]
    fn ctx_accessors_panic_on_wrong_set() {
        let mut b = rapid_core::graph::TaskGraphBuilder::new();
        let dr = b.add_object(1);
        let dw = b.add_object(1);
        let t0 = b.add_task(1.0, &[], &[dr]);
        let t1 = b.add_task(1.0, &[dr], &[dw]);
        b.add_edge(t0, t1);
        let g = b.build().unwrap();
        run_sequential(&g, |t, ctx| {
            if t == t1 {
                // Correct accesses work and are index-resolved.
                assert_eq!(ctx.read(dr).len(), 1);
                assert_eq!(ctx.write(dw).len(), 1);
                // Wrong-set accesses panic.
                assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    ctx.read(dw);
                }))
                .is_err());
                let unknown = ObjId(999);
                assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    ctx.read(unknown);
                }))
                .is_err());
            }
        });
    }

    /// Watchdog regression (satellite): a run whose *total* wall time far
    /// exceeds the watchdog must complete as long as every individual
    /// wait keeps seeing progress. Before the fix, `deadline` was
    /// computed once up front and any sufficiently long run was falsely
    /// poisoned as `Stalled`.
    #[test]
    fn long_steady_run_outlives_watchdog() {
        use rapid_core::graph::TaskGraphBuilder;
        use rapid_core::schedule::{Assignment, Schedule};
        // A two-processor ping-pong chain: task i (on proc i % 2) writes
        // object i and reads object i-1, so every task waits on the
        // previous one across the machine.
        let k = 30usize;
        let mut b = TaskGraphBuilder::new();
        let objs: Vec<_> = (0..k).map(|_| b.add_object(1)).collect();
        let mut tasks = Vec::new();
        for i in 0..k {
            let reads: Vec<_> = if i == 0 { vec![] } else { vec![objs[i - 1]] };
            let t = b.add_task(1.0, &reads, &[objs[i]]);
            if i > 0 {
                b.add_edge(tasks[i - 1], t);
            }
            tasks.push(t);
        }
        let g = b.build().unwrap();
        let assign = Assignment {
            task_proc: (0..k as u32).map(|i| i % 2).collect(),
            owner: (0..k as u32).map(|i| i % 2).collect(),
            nprocs: 2,
        };
        let order = vec![
            tasks.iter().copied().step_by(2).collect(),
            tasks.iter().copied().skip(1).step_by(2).collect(),
        ];
        let sched = Schedule { assign, order };
        let mut exec = ThreadedExecutor::new(&g, &sched, 64);
        // Each task sleeps 10 ms: total runtime ≈ 300 ms >> 120 ms
        // watchdog, while each single wait stays well under it.
        exec.watchdog = Duration::from_millis(120);
        let out = exec
            .run(|t, ctx| {
                std::thread::sleep(Duration::from_millis(10));
                test_body(t, ctx)
            })
            .expect("steady progress must never trip the watchdog");
        assert!(out.wall > exec.watchdog, "test must outlive the watchdog");
        assert_eq!(out.objects, run_sequential(&g, test_body));
    }

    /// Pooled-ring reuse regression (satellite): a traced run whose rings
    /// wrapped must not leak its overwrite epoch into the next run on the
    /// same executor. The pool resets every ring on reuse; without the
    /// reset the second run's decoder would derive a huge phantom drop
    /// count from the stale head (and could claim the previous run's
    /// records as its own). A single-processor chain makes the event
    /// stream fully deterministic, so the two runs must decode
    /// identically — totals, drop counts, and the retained events.
    #[test]
    fn pooled_rings_reset_between_traced_runs() {
        use rapid_core::graph::TaskGraphBuilder;
        use rapid_core::schedule::{Assignment, Schedule};
        let k = 12usize;
        let mut b = TaskGraphBuilder::new();
        let objs: Vec<_> = (0..k).map(|_| b.add_object(1)).collect();
        let mut tasks = Vec::new();
        for i in 0..k {
            let reads: Vec<_> = if i == 0 { vec![] } else { vec![objs[i - 1]] };
            let t = b.add_task(1.0, &reads, &[objs[i]]);
            if i > 0 {
                b.add_edge(tasks[i - 1], t);
            }
            tasks.push(t);
        }
        let g = b.build().unwrap();
        let assign = Assignment { task_proc: vec![0; k], owner: vec![0; k], nprocs: 1 };
        let sched = Schedule { assign, order: vec![tasks.clone()] };
        let exec = ThreadedExecutor::new(&g, &sched, 64)
            .with_tracing(TraceConfig { capacity: 8, tier: TraceTier::Full });
        let out1 = exec.run(test_body).unwrap();
        let t1 = out1.trace.expect("tracing was enabled");
        assert!(t1.dropped() > 0, "capacity 8 must wrap on this workload");
        // Second run reuses the pooled rings (same proc set and capacity).
        let out2 = exec.run(test_body).unwrap();
        let t2 = out2.trace.expect("tracing was enabled");
        assert_eq!(out2.objects, out1.objects);
        for (p1, p2) in t1.procs.iter().zip(t2.procs.iter()) {
            assert_eq!(
                p2.total(),
                p1.total(),
                "proc {}: stale overwrite epoch leaked into the reused ring",
                p1.proc
            );
            assert_eq!(p2.dropped(), p1.dropped(), "proc {}: phantom drops", p1.proc);
            let e1: Vec<_> = p1.iter().map(|(_, e)| e.clone()).collect();
            let e2: Vec<_> = p2.iter().map(|(_, e)| e.clone()).collect();
            assert_eq!(e1, e2, "proc {}: stale records decoded", p1.proc);
        }
    }

    /// A wait with no observable progress for longer than the watchdog
    /// must still be detected: the progress-based deadline forgives long
    /// runs, not long silences.
    #[test]
    fn genuine_stall_is_detected() {
        use rapid_core::graph::TaskGraphBuilder;
        use rapid_core::schedule::{Assignment, Schedule};
        let mut b = TaskGraphBuilder::new();
        let d0 = b.add_object(1);
        let d1 = b.add_object(1);
        let t0 = b.add_task(1.0, &[], &[d0]);
        let t1 = b.add_task(1.0, &[d0], &[d1]);
        b.add_edge(t0, t1);
        let g = b.build().unwrap();
        let assign = Assignment { task_proc: vec![0, 1], owner: vec![0, 1], nprocs: 2 };
        let sched = Schedule { assign, order: vec![vec![t0], vec![t1]] };
        let mut exec = ThreadedExecutor::new(&g, &sched, 16);
        // P0 holds the d0 message hostage for far longer than the
        // watchdog; P1's REC wait sees zero progress in that window.
        exec.watchdog = Duration::from_millis(60);
        let out = exec.run(|t, ctx| {
            if t == t0 {
                std::thread::sleep(Duration::from_millis(500));
            }
            test_body(t, ctx)
        });
        match out {
            Err(ExecError::Stalled { snapshot, .. }) => {
                let snap = snapshot.expect("watchdog failure carries a diagnostic snapshot");
                assert_eq!(snap.procs.len(), 2);
                assert_eq!(snap.watchdog_ms, 60);
                // The render must be usable in a panic message.
                assert!(snap.to_string().contains("P0"));
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_env_override_parses() {
        assert_eq!(parse_watchdog_ms(None), DEFAULT_WATCHDOG);
        assert_eq!(parse_watchdog_ms(Some("250")), Duration::from_millis(250));
        assert_eq!(parse_watchdog_ms(Some(" 90000 ")), Duration::from_millis(90000));
        assert_eq!(parse_watchdog_ms(Some("0")), DEFAULT_WATCHDOG);
        assert_eq!(parse_watchdog_ms(Some("-5")), DEFAULT_WATCHDOG);
        assert_eq!(parse_watchdog_ms(Some("soon")), DEFAULT_WATCHDOG);
    }

    #[test]
    fn watchdog_builder_overrides_default() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_b();
        let exec = ThreadedExecutor::new(&g, &sched, 64).with_watchdog(Duration::from_millis(1234));
        assert_eq!(exec.watchdog, Duration::from_millis(1234));
        let out = exec.run(test_body).unwrap();
        assert_eq!(out.objects, run_sequential(&g, test_body));
    }

    #[test]
    fn task_panic_is_reported_not_propagated() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_b();
        let exec = ThreadedExecutor::new(&g, &sched, 64);
        let out = exec.run(|t, ctx| {
            if t == TaskId(3) {
                panic!("boom in task body");
            }
            test_body(t, ctx)
        });
        match out {
            Err(ExecError::WorkerPanicked { task: Some(t), payload, .. }) => {
                assert_eq!(t, TaskId(3));
                assert!(payload.contains("boom"), "payload was {payload:?}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn access_violation_is_typed_not_swallowed() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_b();
        let victim = ObjId(0);
        let exec = ThreadedExecutor::new(&g, &sched, 64);
        let out = exec.run(move |t, ctx| {
            if t == TaskId(5) {
                // t5 does not write d1: wrong-set access.
                ctx.write(victim);
            }
            test_body(t, ctx)
        });
        match out {
            Err(ExecError::AccessViolation { task, obj, op, .. }) => {
                assert_eq!(task, TaskId(5));
                assert_eq!(obj, victim);
                assert_eq!(op, AccessOp::Write);
            }
            other => panic!("expected AccessViolation, got {other:?}"),
        }
    }

    #[test]
    fn faulted_run_matches_reference() {
        // Smoke-level chaos (the full matrix lives in tests/chaos_stress.rs):
        // every scenario on the Figure 2 DAG must still produce the
        // sequential result.
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let reference = run_sequential(&g, test_body);
        for (name, plan) in FaultPlan::scenarios(17) {
            let exec = ThreadedExecutor::new(&g, &sched, 64).with_faults(plan);
            let out = exec.run(test_body).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(out.objects, reference, "{name}: results differ");
        }
    }

    #[test]
    fn armed_recovery_is_invisible_on_clean_runs() {
        // Arming recovery on a fault-free run must change nothing
        // observable: same results, same protocol skeleton, and not a
        // single rollback event in the trace.
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let mm = min_mem(&g, &sched).min_mem;
        let run = |armed: bool| {
            let mut exec = ThreadedExecutor::new(&g, &sched, mm)
                .with_tracing(rapid_trace::TraceConfig::default());
            if armed {
                exec = exec.with_recovery(crate::recover::RecoveryPolicy::new());
            }
            exec.run(test_body).expect("clean run")
        };
        let plain = run(false);
        let armed = run(true);
        assert_eq!(armed.objects, plain.objects);
        assert_eq!(armed.maps, plain.maps);
        let tr = armed.trace.as_ref().expect("tracing enabled");
        assert!(
            tr.procs.iter().flat_map(|p| p.iter()).all(|(_, e)| !matches!(
                e,
                rapid_trace::Event::WindowRollback { .. }
                    | rapid_trace::Event::AllocRollback { .. }
            )),
            "clean armed run must record no recovery events"
        );
        assert_eq!(
            rapid_trace::skeletons(tr),
            rapid_trace::skeletons(plain.trace.as_ref().expect("tracing enabled")),
            "arming recovery must not perturb the protocol skeleton"
        );
    }
}
