//! The inspector stage of the run-time parallelization pipeline (paper
//! Figure 1): specify irregular data objects and the tasks that access
//! them; the system extracts a transformed task-dependence graph, picks an
//! assignment and an ordering, and hands back a schedule ready for
//! execution.
//!
//! This is the programmer-facing API of RAPID: "a set of library functions
//! for specifying irregular data objects and tasks that access these
//! objects".

use rapid_core::ddg::{AccessKind, DdgStats, TraceBuilder, WritePolicy};
use rapid_core::graph::{ObjId, ProcId, TaskGraph, TaskId};
use rapid_core::schedule::{CostModel, Schedule};
use rapid_sched::assign::{cyclic_owner_map, owner_compute_assignment};

/// The ordering heuristic to use at the second mapping stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ordering {
    /// Critical-path list scheduling (time-efficient baseline).
    Rcp,
    /// Memory-priority guided ordering (paper §4.1).
    Mpo,
    /// Data-access directed time-slicing (paper §4.2).
    Dts,
    /// DTS with slice merging under the given per-processor capacity.
    DtsMerged(u64),
}

/// Inspector: records the sequential task trace and extracts the
/// transformed dependence graph.
#[derive(Debug)]
pub struct Inspector {
    tb: TraceBuilder,
    reduce: bool,
}

impl Default for Inspector {
    fn default() -> Self {
        Self::new()
    }
}

impl Inspector {
    /// New inspector with write renaming (true-dependence-only graphs) and
    /// no transitive reduction.
    pub fn new() -> Self {
        Inspector { tb: TraceBuilder::new(WritePolicy::Rename), reduce: false }
    }

    /// Inspector keeping writes in place (anti/output dependencies become
    /// ordering edges).
    pub fn in_place() -> Self {
        Inspector { tb: TraceBuilder::new(WritePolicy::InPlace), reduce: false }
    }

    /// Enable transitive reduction of redundant dependence edges.
    pub fn with_reduction(mut self) -> Self {
        self.reduce = true;
        self
    }

    /// Declare a data object of `size` allocation units.
    pub fn object(&mut self, size: u64) -> ObjId {
        self.tb.add_object(size)
    }

    /// Declare the next task of the sequential computation: it reads
    /// `reads`, defines `writes` and updates `updates` in place.
    pub fn task(
        &mut self,
        weight: f64,
        reads: &[ObjId],
        writes: &[ObjId],
        updates: &[ObjId],
    ) -> TaskId {
        self.task_labeled(String::new(), weight, reads, writes, updates)
    }

    /// [`Inspector::task`] with a label for traces.
    pub fn task_labeled(
        &mut self,
        label: String,
        weight: f64,
        reads: &[ObjId],
        writes: &[ObjId],
        updates: &[ObjId],
    ) -> TaskId {
        let mut acc: Vec<(ObjId, AccessKind)> =
            Vec::with_capacity(reads.len() + writes.len() + updates.len());
        acc.extend(reads.iter().map(|&d| (d, AccessKind::Read)));
        acc.extend(writes.iter().map(|&d| (d, AccessKind::Write)));
        acc.extend(updates.iter().map(|&d| (d, AccessKind::Update)));
        self.tb.add_task_labeled(label, weight, &acc)
    }

    /// Extract the transformed task-dependence graph.
    pub fn extract(self) -> (TaskGraph, DdgStats) {
        self.tb.build(self.reduce).expect("sequential traces always build DAGs")
    }
}

/// One-stop scheduling: owner-compute clustering over `owner` (cyclic map
/// if `None`) followed by the chosen ordering.
pub fn plan_schedule(
    g: &TaskGraph,
    nprocs: usize,
    owner: Option<Vec<ProcId>>,
    ordering: Ordering,
    cost: &CostModel,
) -> Schedule {
    let owner = owner.unwrap_or_else(|| cyclic_owner_map(g.num_objects(), nprocs));
    let assign = owner_compute_assignment(g, &owner, nprocs);
    match ordering {
        Ordering::Rcp => rapid_sched::rcp::rcp_order(g, &assign, cost),
        Ordering::Mpo => rapid_sched::mpo::mpo_order(g, &assign, cost),
        Ordering::Dts => rapid_sched::dts::dts_order(g, &assign, cost),
        Ordering::DtsMerged(cap) => rapid_sched::dts::dts_order_merged(g, &assign, cost, cap),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inspector_pipeline_end_to_end() {
        // A tiny reduction tree: 4 leaves write, 2 combiners, 1 root.
        let mut ins = Inspector::new();
        let leaves: Vec<_> = (0..4).map(|_| ins.object(2)).collect();
        let mids: Vec<_> = (0..2).map(|_| ins.object(2)).collect();
        let root = ins.object(2);
        for &l in &leaves {
            ins.task(1.0, &[], &[l], &[]);
        }
        ins.task(1.0, &leaves[0..2], &[mids[0]], &[]);
        ins.task(1.0, &leaves[2..4], &[mids[1]], &[]);
        ins.task(1.0, &mids, &[root], &[]);
        let (g, stats) = ins.extract();
        assert_eq!(g.num_tasks(), 7);
        assert_eq!(stats.true_edges, 6);
        assert!(g.is_dependence_complete());

        for ord in [Ordering::Rcp, Ordering::Mpo, Ordering::Dts, Ordering::DtsMerged(64)] {
            let s = plan_schedule(&g, 2, None, ord, &CostModel::unit());
            assert!(s.is_valid(&g), "{ord:?}");
        }
    }

    #[test]
    fn updates_chain_through_inspector() {
        let mut ins = Inspector::new();
        let acc = ins.object(4);
        let t0 = ins.task(1.0, &[], &[acc], &[]);
        let t1 = ins.task(1.0, &[], &[], &[acc]);
        let t2 = ins.task(1.0, &[], &[], &[acc]);
        let (g, _) = ins.extract();
        assert!(g.has_edge(t0, t1));
        assert!(g.has_edge(t1, t2));
        assert_eq!(g.num_objects(), 1);
    }
}
