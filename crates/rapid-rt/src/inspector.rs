//! The inspector stage of the run-time parallelization pipeline (paper
//! Figure 1): specify irregular data objects and the tasks that access
//! them; the system extracts a transformed task-dependence graph, picks an
//! assignment and an ordering, and hands back a schedule ready for
//! execution.
//!
//! This is the programmer-facing API of RAPID: "a set of library functions
//! for specifying irregular data objects and tasks that access these
//! objects".

// sync-audit: the worker-state board (`publish`/`read`) uses Relaxed
// single-word stores by design — it is a best-effort observability snapshot
// for stall diagnostics, racing with the workers on purpose; a torn
// *sequence* of observations is acceptable and no payload is published
// through it.

use rapid_core::ddg::{AccessKind, DdgStats, TraceBuilder, WritePolicy};
use rapid_core::graph::{GraphError, ObjId, ProcId, TaskGraph, TaskId};
use rapid_core::schedule::{CostModel, Schedule};
use rapid_sched::assign::{cyclic_owner_map, owner_compute_assignment};

/// The ordering heuristic to use at the second mapping stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ordering {
    /// Critical-path list scheduling (time-efficient baseline).
    Rcp,
    /// Memory-priority guided ordering (paper §4.1).
    Mpo,
    /// Data-access directed time-slicing (paper §4.2).
    Dts,
    /// DTS with slice merging under the given per-processor capacity.
    DtsMerged(u64),
}

/// Inspector: records the sequential task trace and extracts the
/// transformed dependence graph.
#[derive(Debug)]
pub struct Inspector {
    tb: TraceBuilder,
    reduce: bool,
}

impl Default for Inspector {
    fn default() -> Self {
        Self::new()
    }
}

impl Inspector {
    /// New inspector with write renaming (true-dependence-only graphs) and
    /// no transitive reduction.
    pub fn new() -> Self {
        Inspector { tb: TraceBuilder::new(WritePolicy::Rename), reduce: false }
    }

    /// Inspector keeping writes in place (anti/output dependencies become
    /// ordering edges).
    pub fn in_place() -> Self {
        Inspector { tb: TraceBuilder::new(WritePolicy::InPlace), reduce: false }
    }

    /// Enable transitive reduction of redundant dependence edges.
    pub fn with_reduction(mut self) -> Self {
        self.reduce = true;
        self
    }

    /// Declare a data object of `size` allocation units.
    pub fn object(&mut self, size: u64) -> ObjId {
        self.tb.add_object(size)
    }

    /// Declare the next task of the sequential computation: it reads
    /// `reads`, defines `writes` and updates `updates` in place.
    pub fn task(
        &mut self,
        weight: f64,
        reads: &[ObjId],
        writes: &[ObjId],
        updates: &[ObjId],
    ) -> TaskId {
        self.task_labeled(String::new(), weight, reads, writes, updates)
    }

    /// [`Inspector::task`] with a label for traces.
    pub fn task_labeled(
        &mut self,
        label: String,
        weight: f64,
        reads: &[ObjId],
        writes: &[ObjId],
        updates: &[ObjId],
    ) -> TaskId {
        let mut acc: Vec<(ObjId, AccessKind)> =
            Vec::with_capacity(reads.len() + writes.len() + updates.len());
        acc.extend(reads.iter().map(|&d| (d, AccessKind::Read)));
        acc.extend(writes.iter().map(|&d| (d, AccessKind::Write)));
        acc.extend(updates.iter().map(|&d| (d, AccessKind::Update)));
        self.tb.add_task_labeled(label, weight, &acc)
    }

    /// Extract the transformed task-dependence graph.
    ///
    /// A trace recorded through [`Inspector::task`] is a sequential
    /// program, so the dependence graph is a DAG by construction and the
    /// only way to see an error here is an id-space overflow in the
    /// builder — surfaced as a typed error rather than a panic.
    pub fn extract(self) -> Result<(TaskGraph, DdgStats), GraphError> {
        self.tb.build(self.reduce)
    }
}

/// One-stop scheduling: owner-compute clustering over `owner` (cyclic map
/// if `None`) followed by the chosen ordering.
pub fn plan_schedule(
    g: &TaskGraph,
    nprocs: usize,
    owner: Option<Vec<ProcId>>,
    ordering: Ordering,
    cost: &CostModel,
) -> Schedule {
    let owner = owner.unwrap_or_else(|| cyclic_owner_map(g.num_objects(), nprocs));
    let assign = owner_compute_assignment(g, &owner, nprocs);
    match ordering {
        Ordering::Rcp => rapid_sched::rcp::rcp_order(g, &assign, cost),
        Ordering::Mpo => rapid_sched::mpo::mpo_order(g, &assign, cost),
        Ordering::Dts => rapid_sched::dts::dts_order(g, &assign, cost),
        Ordering::DtsMerged(cap) => rapid_sched::dts::dts_order_merged(g, &assign, cost, cap),
    }
}

// ---------------------------------------------------------------------
// Runtime introspection: the live worker-state board and the stall
// snapshot the threaded executor's watchdog attaches to
// [`ExecError::Stalled`](crate::maps::ExecError::Stalled). The paper's
// five-state machine makes "where is every processor stuck?" the first
// diagnostic question; publishing each worker's (state, position,
// suspended-send depth) through a lock-free board answers it without
// perturbing the run.
// ---------------------------------------------------------------------

use std::sync::atomic::{AtomicU64, Ordering as AtOrd};

/// A worker's protocol state (the paper's Figure 3(b) plus bookkeeping
/// states), as published to the live [`StateBoard`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerState {
    /// Laying out permanent objects before the protocol starts.
    Setup,
    /// Running a memory allocation point (may block on a full mailbox
    /// slot or a fragmented arena).
    Map,
    /// Waiting for the current task's incoming messages.
    Rec,
    /// Executing a task body.
    Exe,
    /// Emitting the task's outgoing messages.
    Snd,
    /// All tasks done; draining the suspended-send queue.
    End,
    /// Worker finished.
    Done,
}

impl WorkerState {
    fn from_bits(b: u64) -> WorkerState {
        match b {
            0 => WorkerState::Setup,
            1 => WorkerState::Map,
            2 => WorkerState::Rec,
            3 => WorkerState::Exe,
            4 => WorkerState::Snd,
            5 => WorkerState::End,
            _ => WorkerState::Done,
        }
    }
}

/// Lock-free board where every worker publishes `(state, position,
/// suspended sends)` on each state transition (one relaxed store), so the
/// first watchdog to fire can photograph the whole machine.
#[derive(Debug)]
pub struct StateBoard {
    /// Packed `state << 60 | pos << 32 | suspended` per processor.
    words: Vec<AtomicU64>,
}

impl StateBoard {
    /// Board for `nprocs` workers, all in [`WorkerState::Setup`].
    pub fn new(nprocs: usize) -> Self {
        StateBoard { words: (0..nprocs).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Publish worker `p`'s current state (relaxed: diagnostics only).
    #[inline]
    pub fn publish(&self, p: usize, st: WorkerState, pos: u32, suspended: u32) {
        let w = ((st as u64) << 60) | (((pos as u64) & 0x0FFF_FFFF) << 32) | suspended as u64;
        self.words[p].store(w, AtOrd::Relaxed);
    }

    /// Read worker `p`'s last published `(state, position, suspended)`.
    pub fn read(&self, p: usize) -> (WorkerState, u32, u32) {
        let w = self.words[p].load(AtOrd::Relaxed);
        (WorkerState::from_bits(w >> 60), ((w >> 32) & 0x0FFF_FFFF) as u32, w as u32)
    }
}

/// One processor's row of a [`StallSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcDiag {
    /// Processor id.
    pub proc: ProcId,
    /// Last published protocol state.
    pub state: WorkerState,
    /// Last published position in the processor's order.
    pub pos: u32,
    /// Length of the processor's order.
    pub order_len: u32,
    /// Suspended sends parked on missing remote addresses.
    pub suspended_sends: u32,
    /// Destinations whose incoming mailbox slot from this processor is
    /// still occupied (a potential blocked-in-MAP edge).
    pub mailbox_full_to: Vec<ProcId>,
    /// Logical address packages sitting in this processor's sender-side
    /// aggregation buffers, not yet physically handed off (always 0 on
    /// the direct backend; a stuck non-zero value under the aggregating
    /// backend points at flush starvation).
    pub buffered_pkgs: u32,
}

/// Diagnostic photograph of the machine taken by the worker whose stall
/// watchdog fired, attached to
/// [`ExecError::Stalled`](crate::maps::ExecError::Stalled).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StallSnapshot {
    /// Processor that tripped the watchdog.
    pub reporter: ProcId,
    /// The watchdog period that elapsed without local progress.
    pub watchdog_ms: u64,
    /// Messages whose arrival flag has been raised, out of the plan total.
    pub msgs_arrived: usize,
    /// Total messages in the protocol plan.
    pub msgs_total: usize,
    /// One row per processor.
    pub procs: Vec<ProcDiag>,
    /// The tail of the reporting worker's event trace (pre-rendered
    /// `"<ms> <event>"` lines), when the run was recording one — what the
    /// stuck worker did right before the silence. Empty otherwise.
    pub recent_events: Vec<String>,
    /// MAP-phase recovery retries across all processors (allocation waves
    /// re-attempted inside a MAP) up to the moment of the snapshot. Always
    /// 0 when the run was not armed with window recovery.
    pub recovery_retries: u32,
    /// EXE-phase recovery rollbacks across all processors (windows rewound
    /// and re-executed) up to the moment of the snapshot. Always 0 when
    /// the run was not armed with window recovery.
    pub recovery_rollbacks: u32,
    /// Most recent window recovery on the machine as
    /// `(processor, window position, attempt)`, when any happened.
    pub last_recovery: Option<(ProcId, u32, u32)>,
    /// Processors a recovery supervisor had quarantined before this
    /// attempt ran. Empty for unsupervised runs; stamped by the
    /// supervisor when it gives up and surfaces the final error.
    pub quarantined: Vec<ProcId>,
}

impl std::fmt::Display for StallSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "stall snapshot (reported by P{} after {} ms without progress; {}/{} messages arrived):",
            self.reporter, self.watchdog_ms, self.msgs_arrived, self.msgs_total
        )?;
        for d in &self.procs {
            write!(
                f,
                "  P{}: {:?} at {}/{} tasks, {} suspended sends",
                d.proc, d.state, d.pos, d.order_len, d.suspended_sends
            )?;
            if !d.mailbox_full_to.is_empty() {
                write!(f, ", undrained packages to {:?}", d.mailbox_full_to)?;
            }
            if d.buffered_pkgs > 0 {
                write!(f, ", {} packages buffered unsent", d.buffered_pkgs)?;
            }
            writeln!(f)?;
        }
        if self.recovery_retries > 0 || self.recovery_rollbacks > 0 {
            write!(
                f,
                "  recovery so far: {} MAP retries, {} window rollbacks",
                self.recovery_retries, self.recovery_rollbacks
            )?;
            if let Some((p, pos, attempt)) = self.last_recovery {
                write!(f, "; last P{p} window {pos} attempt {attempt}")?;
            }
            writeln!(f)?;
        }
        if !self.quarantined.is_empty() {
            writeln!(f, "  quarantined processors: {:?}", self.quarantined)?;
        }
        if !self.recent_events.is_empty() {
            writeln!(f, "  last events on P{}:", self.reporter)?;
            for line in &self.recent_events {
                writeln!(f, "    {line}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inspector_pipeline_end_to_end() {
        // A tiny reduction tree: 4 leaves write, 2 combiners, 1 root.
        let mut ins = Inspector::new();
        let leaves: Vec<_> = (0..4).map(|_| ins.object(2)).collect();
        let mids: Vec<_> = (0..2).map(|_| ins.object(2)).collect();
        let root = ins.object(2);
        for &l in &leaves {
            ins.task(1.0, &[], &[l], &[]);
        }
        ins.task(1.0, &leaves[0..2], &[mids[0]], &[]);
        ins.task(1.0, &leaves[2..4], &[mids[1]], &[]);
        ins.task(1.0, &mids, &[root], &[]);
        let (g, stats) = ins.extract().unwrap();
        assert_eq!(g.num_tasks(), 7);
        assert_eq!(stats.true_edges, 6);
        assert!(g.is_dependence_complete());

        for ord in [Ordering::Rcp, Ordering::Mpo, Ordering::Dts, Ordering::DtsMerged(64)] {
            let s = plan_schedule(&g, 2, None, ord, &CostModel::unit());
            assert!(s.is_valid(&g), "{ord:?}");
        }
    }

    #[test]
    fn state_board_roundtrip() {
        let b = StateBoard::new(3);
        assert_eq!(b.read(2), (WorkerState::Setup, 0, 0));
        b.publish(1, WorkerState::Rec, 17, 4);
        assert_eq!(b.read(1), (WorkerState::Rec, 17, 4));
        b.publish(1, WorkerState::Done, 20, 0);
        assert_eq!(b.read(1), (WorkerState::Done, 20, 0));
        // Large positions survive the packing.
        b.publish(0, WorkerState::Exe, 0x0ABC_DEF0, u32::MAX);
        assert_eq!(b.read(0), (WorkerState::Exe, 0x0ABC_DEF0, u32::MAX));
    }

    #[test]
    fn stall_snapshot_display_names_every_proc() {
        let s = StallSnapshot {
            reporter: 1,
            watchdog_ms: 250,
            msgs_arrived: 3,
            msgs_total: 9,
            procs: vec![
                ProcDiag {
                    proc: 0,
                    state: WorkerState::Map,
                    pos: 2,
                    order_len: 5,
                    suspended_sends: 1,
                    mailbox_full_to: vec![1],
                    buffered_pkgs: 2,
                },
                ProcDiag {
                    proc: 1,
                    state: WorkerState::Rec,
                    pos: 3,
                    order_len: 4,
                    suspended_sends: 0,
                    mailbox_full_to: vec![],
                    buffered_pkgs: 0,
                },
            ],
            recent_events: vec!["1.250ms MsgRecv { msg: 4 }".into()],
            recovery_retries: 2,
            recovery_rollbacks: 1,
            last_recovery: Some((0, 2, 3)),
            quarantined: vec![2],
        };
        let text = s.to_string();
        assert!(text.contains("reported by P1"));
        assert!(text.contains("3/9 messages"));
        assert!(text.contains("P0: Map at 2/5"));
        assert!(text.contains("undrained packages to [1]"));
        assert!(text.contains("2 packages buffered unsent"));
        assert!(text.contains("P1: Rec at 3/4"));
        assert!(text.contains("last events on P1"));
        assert!(text.contains("MsgRecv { msg: 4 }"));
        assert!(text.contains("2 MAP retries, 1 window rollbacks"));
        assert!(text.contains("last P0 window 2 attempt 3"));
        assert!(text.contains("quarantined processors: [2]"));
    }

    #[test]
    fn updates_chain_through_inspector() {
        let mut ins = Inspector::new();
        let acc = ins.object(4);
        let t0 = ins.task(1.0, &[], &[acc], &[]);
        let t1 = ins.task(1.0, &[], &[], &[acc]);
        let t2 = ins.task(1.0, &[], &[], &[acc]);
        let (g, _) = ins.extract().unwrap();
        assert!(g.has_edge(t0, t1));
        assert!(g.has_edge(t1, t2));
        assert_eq!(g.num_objects(), 1);
    }
}
