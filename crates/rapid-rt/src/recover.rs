//! Self-healing supervision: recovery policy, processor quarantine and
//! degraded re-execution.
//!
//! The threaded executor's window recovery
//! ([`ThreadedExecutor::with_recovery`](crate::threaded::ThreadedExecutor::with_recovery))
//! heals *transient* faults in place: a failing allocation wave is
//! re-attempted inside its MAP, and a failing task window is rolled back
//! to its checkpoint and re-executed, both under the bounded budgets of a
//! [`RetryPolicy`]. When a window keeps failing until its budget is
//! exhausted the run surfaces
//! [`ExecError::Unrecoverable`](crate::maps::ExecError::Unrecoverable) —
//! the signal that the fault is not transient but *located*: it names the
//! processor whose window cannot make progress.
//!
//! The [`Supervisor`] acts on that signal one level up. It drives repeated
//! run attempts through a caller-supplied closure, quarantining the
//! implicated processor after each failed attempt and re-running the
//! remaining work on the survivors (the closure typically re-plans with
//! `rapid_verify::Replanner::replan_survivors` and restarts the executor
//! from the initial data — the consistent cut is the run start, which is
//! always available because RAPID's resident data is re-initializable by
//! construction). Quarantine decisions depend only on the typed error of
//! each attempt, so for seeded fault plans the whole ladder —
//! retry → rollback → quarantine → re-plan — is deterministic; only
//! watchdog-triggered stalls, which are wall-clock events, fall outside
//! the byte-identical-recovery guarantee.

use crate::maps::ExecError;
pub use rapid_machine::RetryPolicy;

/// Recovery configuration for the threaded executor. Arming it
/// (`with_recovery`) enables site-level retries, window checkpoints and
/// window-granular rollback & re-execution; an unarmed run keeps the
/// zero-cost fault-free hot path (every recovery site is a single
/// `Option` branch and no checkpoint is ever captured).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Per-site retry budgets (allocation, mailbox, window re-execution).
    pub retry: RetryPolicy,
}

impl RecoveryPolicy {
    /// Default budgets (see [`RetryPolicy::new`]).
    pub const fn new() -> Self {
        RecoveryPolicy { retry: RetryPolicy::new() }
    }
}

/// What a supervised run went through before succeeding (or giving up).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Processors quarantined, in quarantine order.
    pub quarantined: Vec<u32>,
    /// Run attempts made (1 = clean first run, no quarantine).
    pub attempts: u32,
}

/// Drives run attempts with processor quarantine: each failed attempt
/// implicates a processor (from the typed [`ExecError`]), which is
/// removed from the alive set before the next attempt. Generic over the
/// attempt closure so the executor / re-planner wiring stays with the
/// caller and this crate does not depend on the planner.
#[derive(Clone, Copy, Debug)]
pub struct Supervisor {
    /// Maximum processors to quarantine before giving up.
    max_quarantines: usize,
}

impl Supervisor {
    /// Supervisor that will quarantine at most `max_quarantines`
    /// processors before surfacing the last error.
    pub fn new(max_quarantines: usize) -> Self {
        Supervisor { max_quarantines }
    }

    /// The processor a failure implicates, when the error names one.
    /// Stalls implicate the watchdog reporter — the processor that went
    /// longest without progress.
    pub fn culprit(e: &ExecError) -> Option<u32> {
        match e {
            ExecError::Unrecoverable { proc, .. }
            | ExecError::Fragmented { proc, .. }
            | ExecError::WorkerPanicked { proc, .. }
            | ExecError::AccessViolation { proc, .. } => Some(*proc),
            ExecError::Stalled { snapshot, .. } => snapshot.as_ref().map(|s| s.reporter),
            _ => None,
        }
    }

    /// Run `attempt` until it succeeds or quarantine is exhausted. The
    /// closure receives the alive mask (`alive[p]` false once `p` is
    /// quarantined) and is expected to re-place the remaining work onto
    /// the survivors and restart from the initial data.
    ///
    /// Gives up — returning the last attempt's error, with the
    /// quarantine list stamped onto a stall snapshot when one is
    /// attached — when the error implicates no processor, the implicated
    /// processor is already quarantined (the fault moved with the work:
    /// not a processor fault), only one survivor would remain, or the
    /// quarantine budget is spent.
    pub fn run<T>(
        &self,
        nprocs: usize,
        mut attempt: impl FnMut(&[bool]) -> Result<T, ExecError>,
    ) -> Result<(T, RecoveryReport), ExecError> {
        let mut alive = vec![true; nprocs];
        let mut report = RecoveryReport::default();
        loop {
            report.attempts += 1;
            let err = match attempt(&alive) {
                Ok(v) => return Ok((v, report)),
                Err(e) => e,
            };
            let quarantine = Self::culprit(&err).filter(|&q| {
                report.quarantined.len() < self.max_quarantines
                    && alive.iter().filter(|&&a| a).count() > 1
                    && alive.get(q as usize).copied().unwrap_or(false)
            });
            let Some(q) = quarantine else {
                return Err(stamp(err, &report));
            };
            alive[q as usize] = false;
            report.quarantined.push(q);
        }
    }
}

/// Make the quarantine history visible on the way out: a final stall
/// snapshot should name the processors that were already off the machine.
fn stamp(mut e: ExecError, report: &RecoveryReport) -> ExecError {
    if let ExecError::Stalled { snapshot: Some(s), .. } = &mut e {
        s.quarantined = report.quarantined.clone();
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inspector::StallSnapshot;

    fn unrec(proc: u32) -> ExecError {
        ExecError::Unrecoverable {
            proc,
            pos: 3,
            attempts: 24,
            cause: Box::new(ExecError::Fragmented { proc, requested: 8, largest: 4 }),
        }
    }

    #[test]
    fn clean_first_attempt_reports_no_quarantine() {
        let sup = Supervisor::new(2);
        let (v, report) = sup
            .run(4, |alive| {
                assert_eq!(alive, &[true; 4]);
                Ok::<_, ExecError>(42)
            })
            .expect("clean run");
        assert_eq!(v, 42);
        assert_eq!(report, RecoveryReport { quarantined: vec![], attempts: 1 });
    }

    #[test]
    fn failing_processor_is_quarantined_then_run_succeeds() {
        let sup = Supervisor::new(2);
        let (v, report) =
            sup.run(3, |alive| {
                if alive[1] {
                    Err(unrec(1))
                } else {
                    Ok(alive.iter().filter(|&&a| a).count())
                }
            })
            .expect("recovers after quarantining P1");
        assert_eq!(v, 2, "second attempt ran on the two survivors");
        assert_eq!(report, RecoveryReport { quarantined: vec![1], attempts: 2 });
    }

    #[test]
    fn quarantine_budget_and_survivor_floor_are_enforced() {
        // Budget 1 but two distinct processors fail in turn: give up on
        // the second failure and surface it.
        let sup = Supervisor::new(1);
        let err = sup
            .run(4, |alive: &[bool]| -> Result<(), ExecError> {
                let p = alive.iter().position(|&a| a).expect("someone alive") as u32;
                Err(unrec(p))
            })
            .unwrap_err();
        assert!(matches!(err, ExecError::Unrecoverable { proc: 1, .. }), "{err}");

        // Never quarantine down to zero survivors.
        let sup = Supervisor::new(8);
        let err = sup.run(2, |alive: &[bool]| -> Result<(), ExecError> {
            Err(unrec(alive.iter().position(|&a| a).expect("someone alive") as u32))
        });
        assert!(err.is_err(), "a 2-proc machine stops after one quarantine");
    }

    #[test]
    fn stall_snapshot_carries_quarantine_history() {
        let sup = Supervisor::new(4);
        let err = sup
            .run(3, |alive: &[bool]| -> Result<(), ExecError> {
                if alive[0] {
                    return Err(unrec(0));
                }
                Err(ExecError::Stalled {
                    remaining: 5,
                    snapshot: Some(Box::new(StallSnapshot {
                        reporter: 1,
                        watchdog_ms: 80,
                        msgs_arrived: 0,
                        msgs_total: 4,
                        procs: vec![],
                        recent_events: vec![],
                        recovery_retries: 0,
                        recovery_rollbacks: 0,
                        last_recovery: None,
                        quarantined: vec![],
                    })),
                })
            })
            .unwrap_err();
        // The stall implicated P1, which got quarantined; the next stall
        // implicated P2 but only one survivor would remain, so the
        // supervisor gave up and stamped the history onto the snapshot.
        match err {
            ExecError::Stalled { snapshot: Some(s), .. } => {
                assert_eq!(s.quarantined, vec![0, 1]);
            }
            other => panic!("expected stalled, got {other}"),
        }
    }
}
