//! The RAPID runtime (paper §3): inspector API, active memory management
//! and the five-state execution protocol, in two executors.
//!
//! - [`inspector`] — the run-time parallelization pipeline of Figure 1:
//!   register irregular data objects and the tasks that access them, get a
//!   transformed task graph, schedule it, execute it.
//! - [`maps`] — the memory-allocation-point (MAP) planner shared by both
//!   executors: dead-point tables, allocation windows, address packages.
//! - [`des`] — the deterministic discrete-event executor that models
//!   run-time behaviour (parallel time, #MAPs, blocking on address
//!   buffers and message arrivals) under a per-processor memory cap; it
//!   reproduces the paper's Tables 2–8.
//! - [`threaded`] — the real shared-memory executor: one OS thread per
//!   simulated processor, RMA stores into remote arenas, single-slot
//!   address mailboxes, REC/EXE/SND/MAP/END state machine with RA and CQ
//!   service routines. Exercises the Theorem-1 liveness argument under
//!   real concurrency and computes actual numeric results.
//! - [`recover`] — self-healing supervision: the recovery policy armed on
//!   the threaded executor (site retries, window checkpoints, rollback &
//!   re-execution) and the processor-quarantine supervisor that re-plans
//!   the remaining work onto survivors when a window is unrecoverable.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod des;
pub mod inspector;
pub mod maps;
pub mod recover;
pub mod threaded;

pub use des::{ConfigError, DesConfig, DesExecutor, DesOutcome};
pub use inspector::Inspector;
pub use maps::{ExecError, MapPlacement, MapWindow, PlannedMap, RtPlan};
pub use rapid_trace::{TraceConfig, TraceSet};
pub use recover::{RecoveryPolicy, RecoveryReport, RetryPolicy, Supervisor};
pub use threaded::{run_sequential, Backend, TaskCtx, ThreadedExecutor, ThreadedOutcome};
