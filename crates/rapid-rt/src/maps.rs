//! The shared protocol plan: everything both executors precompute from a
//! schedule before running the active-memory-management protocol.
//!
//! - **Messages** — one per (task, destination processor) pair with at
//!   least one cross-processor dependence edge; it carries the objects
//!   written by the source task and read by the destination tasks (data
//!   presending), or nothing (a pure synchronization message for
//!   cross-processor control edges such as anti-dependence chains).
//! - **Address watchers** — for every volatile object of every processor,
//!   the set of processors that will RMA-put into its buffer and therefore
//!   must be notified of its address when a MAP allocates it.
//! - **Liveness** — first-use and dead-after tables per processor
//!   (computed once, `O(Σ access sets)`, the paper's static data-flow
//!   analysis).
//!
//! MAP planning itself ([`MapPlanner`]) is also shared: given the current
//! allocation state it decides which volatiles to free, how far ahead the
//! allocation window extends, and which address packages to emit.

use rapid_core::graph::{ObjId, ProcId, TaskGraph, TaskId};
use rapid_core::liveness::Liveness;
use rapid_core::schedule::Schedule;
use std::collections::HashMap;

/// Address watchers in dense, hash-free form: for every volatile object of
/// every processor, the processors that will RMA-put into its buffer and
/// therefore must be notified of its address when a MAP allocates it.
///
/// Stored per allocating processor as a list sorted by object id, so the
/// MAP-time query is a binary search over that processor's (typically
/// short) watcher list — no hashing anywhere in the runtime.
#[derive(Debug, Default)]
pub struct WatcherTable {
    /// `per_proc[p]`: `(obj, watchers)` pairs sorted by `obj`.
    per_proc: Vec<Vec<(u32, Vec<ProcId>)>>,
}

impl WatcherTable {
    /// Processors that must learn the address of volatile `obj` on `p`
    /// (empty for unwatched objects).
    pub fn of(&self, p: ProcId, obj: u32) -> &[ProcId] {
        let rows = &self.per_proc[p as usize];
        match rows.binary_search_by_key(&obj, |&(o, _)| o) {
            Ok(i) => &rows[i].1,
            Err(_) => &[],
        }
    }

    /// Total number of watched `(proc, obj)` pairs.
    pub fn len(&self) -> usize {
        self.per_proc.iter().map(|r| r.len()).sum()
    }

    /// True when no object is watched.
    pub fn is_empty(&self) -> bool {
        self.per_proc.iter().all(|r| r.is_empty())
    }
}

/// A run-time message: data present from one task's processor to one
/// destination processor.
#[derive(Clone, Debug)]
pub struct Message {
    /// Dense message id (index into [`RtPlan::msgs`] and the flag board).
    pub id: u32,
    /// Producing task.
    pub src_task: TaskId,
    /// Processor of the producing task.
    pub src_proc: ProcId,
    /// Destination processor.
    pub dst_proc: ProcId,
    /// Objects carried: written by `src_task`, read by at least one of the
    /// destination tasks. May be empty (pure synchronization).
    pub objs: Vec<ObjId>,
    /// Total size of `objs` in allocation units.
    pub units: u64,
    /// Destination tasks waiting on this message.
    pub dst_tasks: Vec<TaskId>,
}

/// Precomputed protocol metadata for one schedule.
#[derive(Debug)]
pub struct RtPlan {
    /// All run-time messages.
    pub msgs: Vec<Message>,
    /// `in_msgs[t]`: message ids task `t` must receive before running.
    pub in_msgs: Vec<Vec<u32>>,
    /// `out_msgs[t]`: message ids task `t` emits after running.
    pub out_msgs: Vec<Vec<u32>>,
    /// Liveness (volatile lifetimes) per processor.
    pub lv: Liveness,
    /// Dense watcher table: which processors must learn the address of
    /// each volatile object when a MAP allocates it (the procs that put
    /// into it).
    pub watchers: WatcherTable,
    /// Position of every task in its processor's order.
    pub pos: Vec<u32>,
    /// Per-processor total size of permanent objects.
    pub perm_units: Vec<u64>,
}

impl RtPlan {
    /// Build the plan for `sched` over `g`.
    pub fn new(g: &TaskGraph, sched: &Schedule) -> RtPlan {
        let n = g.num_tasks();
        let assign = &sched.assign;
        let lv = Liveness::analyze(g, sched);
        let pos = sched.positions();

        let mut msgs: Vec<Message> = Vec::new();
        let mut in_msgs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut out_msgs: Vec<Vec<u32>> = vec![Vec::new(); n];
        // Coalesce each task's cross-proc out-edges by (destination
        // processor, carried object set). Edges carrying *different* sets
        // must stay separate messages: merging a pure-sync edge with a
        // data edge would make an early destination task wait on a buffer
        // it only allocates at a later MAP, breaking the Fact-I invariant
        // of the Theorem 1 proof ("if a processor is waiting for receiving
        // a data object, the local address must have already been
        // notified").
        let mut by_key: HashMap<(ProcId, Vec<u32>), Vec<TaskId>> = HashMap::new();
        for t in g.tasks() {
            by_key.clear();
            let sp = assign.proc_of(t);
            for &s in g.succs(t) {
                let s = TaskId(s);
                let dp = assign.proc_of(s);
                if dp == sp {
                    continue;
                }
                // Objects this edge carries: writes(t) ∩ reads(s), both
                // sorted, so the intersection is sorted and canonical.
                let ws = g.writes(t);
                let rs = g.reads(s);
                let mut objs: Vec<u32> = Vec::new();
                let (mut i, mut j) = (0, 0);
                while i < ws.len() && j < rs.len() {
                    match ws[i].cmp(&rs[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            objs.push(ws[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                by_key.entry((dp, objs)).or_default().push(s);
            }
            // Deterministic message order: by (destination, object set).
            let mut keys: Vec<(ProcId, Vec<u32>)> = by_key.keys().cloned().collect();
            keys.sort_unstable();
            for key in keys {
                let Some(mut dst_tasks) = by_key.remove(&key) else { continue };
                let (dp, objs) = key;
                dst_tasks.sort_unstable();
                dst_tasks.dedup();
                let id = msgs.len() as u32;
                let units = objs.iter().map(|&d| g.obj_size(ObjId(d))).sum();
                for &dt in &dst_tasks {
                    in_msgs[dt.idx()].push(id);
                }
                out_msgs[t.idx()].push(id);
                msgs.push(Message {
                    id,
                    src_task: t,
                    src_proc: sp,
                    dst_proc: dp,
                    objs: objs.into_iter().map(ObjId).collect(),
                    units,
                    dst_tasks,
                });
            }
        }

        // Address watchers: senders that put each volatile object, grouped
        // per allocating processor and sorted by object id.
        let mut triples: Vec<(ProcId, u32, ProcId)> = Vec::new();
        for m in &msgs {
            for &d in &m.objs {
                if assign.owner_of(d) != m.dst_proc {
                    triples.push((m.dst_proc, d.0, m.src_proc));
                }
            }
        }
        triples.sort_unstable();
        triples.dedup();
        let mut watchers = WatcherTable { per_proc: vec![Vec::new(); assign.nprocs] };
        for (p, obj, src) in triples {
            let rows = &mut watchers.per_proc[p as usize];
            match rows.last_mut() {
                Some((o, ws)) if *o == obj => ws.push(src),
                _ => rows.push((obj, vec![src])),
            }
        }

        let mut perm_units = vec![0u64; assign.nprocs];
        for d in g.objects() {
            perm_units[assign.owner_of(d) as usize] += g.obj_size(d);
        }

        RtPlan { msgs, in_msgs, out_msgs, lv, watchers, pos, perm_units }
    }

    /// Messages carrying data (non-empty object list).
    pub fn data_msg_count(&self) -> usize {
        self.msgs.iter().filter(|m| !m.objs.is_empty()).count()
    }

    /// The plain-data protocol description the trace invariant checker
    /// replays against ([`rapid_trace::check::check`]). `capacity` is the
    /// per-processor memory cap the run executed under. Executors running
    /// the buffered-mailbox ablation set
    /// [`rapid_trace::ProtocolSpec::buffered_mailboxes`] on the result
    /// themselves.
    pub fn trace_spec(&self, capacity: u64) -> rapid_trace::ProtocolSpec {
        rapid_trace::ProtocolSpec {
            nprocs: self.perm_units.len(),
            msgs: self
                .msgs
                .iter()
                .map(|m| rapid_trace::MsgSpec {
                    src_proc: m.src_proc,
                    dst_proc: m.dst_proc,
                    objs: m.objs.iter().map(|d| d.0).collect(),
                })
                .collect(),
            in_msgs: self.in_msgs.clone(),
            out_msgs: self.out_msgs.clone(),
            capacity,
            perm_units: self.perm_units.clone(),
            buffered_mailboxes: false,
        }
    }

    /// Precompute the full MAP placement of this plan under `capacity`
    /// with the given window policy.
    ///
    /// Runs the shared [`MapPlanner`] to completion for every processor —
    /// exactly the sequence of windows both executors will perform at run
    /// time, since MAP decisions depend only on the static order and the
    /// counting allocation state. Fails with [`ExecError::NonExecutable`]
    /// at the first window whose immediate task cannot be provisioned
    /// (Definition 6).
    pub fn place_maps(
        &self,
        g: &TaskGraph,
        sched: &Schedule,
        capacity: u64,
        window: MapWindow,
    ) -> Result<MapPlacement, ExecError> {
        let mut per_proc = Vec::with_capacity(sched.order.len());
        for p in 0..sched.order.len() {
            per_proc.push(self.place_maps_for_proc(g, sched, p as ProcId, capacity, window)?);
        }
        Ok(MapPlacement { capacity, window, per_proc })
    }

    /// Parallel [`place_maps`]: every processor's MAP walk is independent
    /// (each [`MapPlanner`] sees only its own order and counting state), so
    /// processors are sharded across `nthreads` scoped threads. Identical
    /// placement for every thread count, and on failure the reported error
    /// is the lowest-processor one — the same error the sequential walk
    /// hits first (shards cover contiguous ascending processor ranges, and
    /// each shard stops at its first failing processor).
    pub fn place_maps_par(
        &self,
        g: &TaskGraph,
        sched: &Schedule,
        capacity: u64,
        window: MapWindow,
        nthreads: usize,
    ) -> Result<MapPlacement, ExecError> {
        let nprocs = sched.order.len();
        let shards = rapid_core::par::map_shards(nthreads.max(1), nprocs, |_i, range| {
            let mut rows = Vec::with_capacity(range.len());
            for p in range {
                rows.push(self.place_maps_for_proc(g, sched, p as ProcId, capacity, window)?);
            }
            Ok::<_, ExecError>(rows)
        });
        let mut per_proc = Vec::with_capacity(nprocs);
        for shard in shards {
            per_proc.extend(shard?);
        }
        Ok(MapPlacement { capacity, window, per_proc })
    }

    /// The complete MAP walk of one processor under `capacity`.
    fn place_maps_for_proc(
        &self,
        g: &TaskGraph,
        sched: &Schedule,
        p: ProcId,
        capacity: u64,
        window: MapWindow,
    ) -> Result<Vec<PlannedMap>, ExecError> {
        let mut planner = MapPlanner::new(p, capacity, self.perm_units[p as usize]);
        let mut rows: Vec<PlannedMap> = Vec::new();
        let mut pos = 0u32;
        loop {
            let a = planner.run_map_with(g, sched, self, pos, window)?;
            let next = a.next_map;
            rows.push(PlannedMap {
                pos,
                frees: a.frees,
                allocs: a.allocs,
                alloc_pos: a.alloc_pos,
                next_map: a.next_map,
                notifies: a.notifies,
                in_use: planner.in_use(),
            });
            pos = next;
            if pos as usize >= sched.order[p as usize].len() {
                break;
            }
        }
        Ok(rows)
    }

    /// Estimated storage for the dependence structure itself, in
    /// allocation units (8-byte words): edges, access sets, message
    /// tables and liveness tables. The paper's §6 observes this overhead
    /// at 18–50 % of total memory on its test problems and calls
    /// distributing it future work; this estimator lets the benches report
    /// the same ratio for our workloads.
    pub fn control_units(&self, g: &rapid_core::graph::TaskGraph) -> u64 {
        // Two 4-byte ids per edge (succs + preds mirrors), one per access
        // entry (reads + writes + the two transposes), three words per
        // message record plus its object/destination lists, and the
        // first-use/dead-after liveness tables.
        let edge_words = 2 * g.num_edges() as u64;
        let access_entries: u64 =
            g.tasks().map(|t| 2 * (g.reads(t).len() + g.writes(t).len()) as u64).sum();
        let msg_words: u64 =
            self.msgs.iter().map(|m| 3 + m.objs.len() as u64 + m.dst_tasks.len() as u64).sum();
        let live_words: u64 = self.lv.procs.iter().map(|pl| 2 * pl.volatile.len() as u64).sum();
        // Two 4-byte entries per unit (one unit = 8 bytes).
        (edge_words + access_entries + msg_words + live_words).div_ceil(2)
    }
}

/// One address notification a MAP must emit: tell `dst` that `obj` now
/// lives at `offset` on the allocating processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Notify {
    /// Processor to notify.
    pub dst: ProcId,
    /// Object id.
    pub obj: u32,
    /// Buffer offset in the allocating processor's arena (executors using
    /// counting allocation pass 0).
    pub offset: u64,
}

/// Outcome of planning one MAP.
#[derive(Clone, Debug)]
pub struct MapAction {
    /// Volatile objects to free (dead before the current position).
    pub frees: Vec<ObjId>,
    /// Volatile objects to allocate, in allocation order.
    pub allocs: Vec<ObjId>,
    /// `alloc_pos[i]`: the order position whose task first uses
    /// `allocs[i]` — i.e. which window step introduced the allocation.
    /// Executors that hit real (or injected) arena fragmentation use this
    /// to truncate the window at the failing step instead of aborting.
    pub alloc_pos: Vec<u32>,
    /// Position (exclusive) up to which tasks are covered: the next MAP
    /// goes right before this position.
    pub next_map: u32,
    /// Address notifications for the newly allocated objects (offsets to
    /// be filled by the executor's allocator).
    pub notifies: Vec<Notify>,
}

/// One statically planned MAP window: the [`MapAction`] the executors
/// will take at `pos`, plus the resulting arena occupancy. Part of the
/// checkable [`MapPlacement`] artifact consumed by `rapid-verify`.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannedMap {
    /// Order position the MAP precedes (frees happen here).
    pub pos: u32,
    /// Volatile objects freed by this MAP's free wave (dead before `pos`).
    pub frees: Vec<ObjId>,
    /// Volatile objects allocated by this window, in allocation order.
    pub allocs: Vec<ObjId>,
    /// `alloc_pos[i]`: the order position whose task first uses
    /// `allocs[i]`.
    pub alloc_pos: Vec<u32>,
    /// Position (exclusive) up to which tasks are covered.
    pub next_map: u32,
    /// Address notifications the MAP emits (counting form: offsets are 0;
    /// executors fill real arena offsets at run time).
    pub notifies: Vec<Notify>,
    /// Units in use after this window's allocations. Occupancy is
    /// monotone within a window, so this is the window's high-water mark
    /// — the quantity `rapid-verify` checks against the capacity and the
    /// DES trace's `MapEnd` events report dynamically.
    pub in_use: u64,
}

/// The complete static MAP placement of a plan: every window every
/// processor will execute, precomputed. MAP decisions are purely local
/// and deterministic (free wave + greedy window over the static order),
/// so the placement is exact for both executors — it is the "plan
/// artifact" `rapid-verify` analyses and the negative tests corrupt.
///
/// The threaded executor can *truncate* a window below this placement
/// when real arena fragmentation blocks a lookahead allocation; such runs
/// surface as [`ExecError::Fragmented`] retries and are excluded from the
/// differential guarantee (as in the conformance suite).
#[derive(Clone, Debug, PartialEq)]
pub struct MapPlacement {
    /// Per-processor capacity the placement was computed for.
    pub capacity: u64,
    /// Window policy used.
    pub window: MapWindow,
    /// `per_proc[p]`: the MAP windows of processor `p`, in execution
    /// order. A processor with an empty order still performs one (empty)
    /// MAP before terminating, matching the managed executors.
    pub per_proc: Vec<Vec<PlannedMap>>,
}

impl MapPlacement {
    /// Total number of MAPs across all processors.
    pub fn total_maps(&self) -> usize {
        self.per_proc.iter().map(|w| w.len()).sum()
    }

    /// Per-processor arena high-water of the placement: the maximum
    /// window occupancy, at least the permanent size (`perm[p]`) for
    /// processors whose windows allocate nothing.
    pub fn peaks(&self, perm_units: &[u64]) -> Vec<u64> {
        self.per_proc
            .iter()
            .zip(perm_units)
            .map(|(ws, &pu)| ws.iter().map(|w| w.in_use).fold(pu, u64::max))
            .collect()
    }
}

/// Which access-set lookup a task body attempted when it violated its
/// declared access set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOp {
    /// [`TaskCtx::read`](crate::threaded::TaskCtx::read) of an object not
    /// in the task's read-only set.
    Read,
    /// [`TaskCtx::write`](crate::threaded::TaskCtx::write) of an object
    /// not in the task's write set.
    Write,
}

/// The panic payload raised by [`TaskCtx`](crate::threaded::TaskCtx)
/// accessors on a wrong-set access. The threaded executor catches it at
/// the task boundary and converts it into
/// [`ExecError::AccessViolation`]; in the sequential reference it unwinds
/// like any panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessViolation {
    /// Object the body asked for.
    pub obj: ObjId,
    /// Which accessor it used.
    pub op: AccessOp,
}

impl std::fmt::Display for AccessViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.op {
            AccessOp::Read => write!(f, "task does not read-only {:?}", self.obj),
            AccessOp::Write => write!(f, "task does not write {:?}", self.obj),
        }
    }
}

/// Errors shared by the executors.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// The schedule cannot run under the memory constraint: at some MAP,
    /// even after freeing every dead volatile, the very next task's
    /// objects do not fit (the paper's `∞` entries, Definition 6).
    NonExecutable {
        /// Processor that failed.
        proc: ProcId,
        /// Position of the task that could not be provisioned.
        position: u32,
        /// Units that would be needed in use simultaneously.
        needed: u64,
        /// The per-processor capacity.
        capacity: u64,
    },
    /// The event loop stalled with unfinished tasks — a protocol bug
    /// (Theorem 1 says this cannot happen); surfaced for debugging rather
    /// than panicking.
    Stalled {
        /// Tasks that never ran.
        remaining: usize,
        /// Diagnostic snapshot taken by the worker whose watchdog fired
        /// (threaded executor only; the DES has its own debug dump).
        snapshot: Option<Box<crate::inspector::StallSnapshot>>,
    },
    /// The threaded executor's arena could not satisfy an allocation due
    /// to fragmentation (enough free units but no contiguous block), even
    /// after the bounded retry / window-truncation ladder.
    Fragmented {
        /// Processor that failed.
        proc: ProcId,
        /// Requested units.
        requested: u64,
        /// Largest contiguous free block at the time of failure.
        largest: u64,
    },
    /// A task body panicked, or a worker thread died outside a task body
    /// (`task` is then `None`). The run is poisoned and every other
    /// worker exits cleanly instead of the whole process aborting.
    WorkerPanicked {
        /// Processor whose worker panicked.
        proc: ProcId,
        /// Task whose body panicked, when the panic was raised inside one.
        task: Option<TaskId>,
        /// Stringified panic payload (`"<non-string payload>"` when the
        /// payload was neither `&str` nor `String`).
        payload: String,
    },
    /// A runtime invariant the protocol proof relies on was violated
    /// (e.g. a planned free did not match a live arena block). Surfaced as
    /// a typed error through the normal failure path so a buggy build
    /// poisons the run instead of panicking a worker thread.
    Internal {
        /// Processor that detected the violation.
        proc: ProcId,
        /// Human-readable description of the broken invariant.
        detail: String,
    },
    /// A task body accessed an object outside its declared access set —
    /// caught at the task boundary and surfaced through the normal
    /// failure path instead of aborting the process.
    AccessViolation {
        /// Processor whose task violated its access set.
        proc: ProcId,
        /// The violating task.
        task: TaskId,
        /// Object the body asked for.
        obj: ObjId,
        /// Which accessor it used.
        op: AccessOp,
    },
    /// Recovery gave up: a window kept failing until its re-execution
    /// budget was exhausted. Carries the underlying error so the cause
    /// of the *last* attempt is never lost, and names the budget so
    /// operators can tell a too-small budget from a hard fault.
    Unrecoverable {
        /// Processor whose window could not be recovered.
        proc: ProcId,
        /// Order position the failing window starts at.
        pos: u32,
        /// Re-execution attempts consumed (the exhausted budget).
        attempts: u32,
        /// The failure of the final attempt.
        cause: Box<ExecError>,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::NonExecutable { proc, position, needed, capacity } => write!(
                f,
                "non-executable under memory constraint: P{proc} task #{position} needs {needed} units, capacity {capacity}"
            ),
            ExecError::Stalled { remaining, snapshot } => {
                write!(f, "execution stalled with {remaining} tasks remaining")?;
                if let Some(s) = snapshot {
                    write!(f, "\n{s}")?;
                }
                Ok(())
            }
            ExecError::Fragmented { proc, requested, largest } => write!(
                f,
                "arena fragmentation on P{proc}: {requested} units unavailable (largest contiguous block {largest})"
            ),
            ExecError::WorkerPanicked { proc, task, payload } => match task {
                Some(t) => write!(f, "task {t:?} on P{proc} panicked: {payload}"),
                None => write!(f, "worker thread of P{proc} panicked: {payload}"),
            },
            ExecError::Internal { proc, detail } => {
                write!(f, "internal runtime invariant violated on P{proc}: {detail}")
            }
            ExecError::AccessViolation { proc, task, obj, op } => {
                write!(
                    f,
                    "access violation in task {task:?} on P{proc}: {}",
                    AccessViolation { obj: *obj, op: *op }
                )
            }
            ExecError::Unrecoverable { proc, pos, attempts, cause } => write!(
                f,
                "unrecoverable: window at P{proc} pos {pos} still failing after {attempts} re-execution attempts (budget exhausted); last cause: {cause}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// How far ahead a MAP allocates (ablation knob; the paper's scheme is
/// greedy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MapWindow {
    /// Allocate for as many upcoming tasks as fit (paper §3.3: "the
    /// allocation will stop after `T_k` if space for `T_{k+1}` cannot be
    /// allocated").
    #[default]
    Greedy,
    /// Allocate only the immediate next task's objects — a MAP before
    /// every task. Minimizes resident volatile space between MAPs at the
    /// cost of the maximum number of allocation points.
    Single,
}

/// Per-processor MAP planner: owns the set of currently-allocated
/// volatiles (by counting, not offsets) and computes each MAP's action.
#[derive(Debug)]
pub struct MapPlanner {
    proc: ProcId,
    capacity: u64,
    /// Currently allocated volatile objects (sorted).
    allocated: Vec<ObjId>,
    /// Units in use by permanents + allocated volatiles.
    in_use: u64,
    /// High-water mark.
    peak: u64,
    /// Number of MAPs performed.
    maps: u32,
}

impl MapPlanner {
    /// Planner for processor `p` with the given capacity; permanents are
    /// allocated immediately.
    pub fn new(p: ProcId, capacity: u64, perm_units: u64) -> MapPlanner {
        MapPlanner {
            proc: p,
            capacity,
            allocated: Vec::new(),
            in_use: perm_units,
            peak: perm_units,
            maps: 0,
        }
    }

    /// Units currently in use.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark of [`MapPlanner::in_use`].
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// MAPs performed so far.
    pub fn maps(&self) -> u32 {
        self.maps
    }

    /// Is volatile `d` currently allocated?
    pub fn is_allocated(&self, d: ObjId) -> bool {
        self.allocated.binary_search(&d).is_ok()
    }

    /// Plan and commit the MAP at position `pos` of this processor's
    /// order. Frees volatiles dead before `pos`, then extends the
    /// allocation window greedily; fails if the task at `pos` itself
    /// cannot be provisioned (Definition 6).
    pub fn run_map(
        &mut self,
        g: &TaskGraph,
        sched: &Schedule,
        plan: &RtPlan,
        pos: u32,
    ) -> Result<MapAction, ExecError> {
        self.run_map_with(g, sched, plan, pos, MapWindow::Greedy)
    }

    /// [`MapPlanner::run_map`] with an explicit window policy.
    pub fn run_map_with(
        &mut self,
        g: &TaskGraph,
        sched: &Schedule,
        plan: &RtPlan,
        pos: u32,
        window: MapWindow,
    ) -> Result<MapAction, ExecError> {
        self.maps += 1;
        let p = self.proc as usize;
        let pl = &plan.lv.procs[p];
        let order = &sched.order[p];

        // Free volatiles whose last use is strictly before `pos`.
        let mut frees = Vec::new();
        self.allocated.retain(|&d| {
            // Only objects from this processor's volatile set ever enter
            // `allocated`; keep anything else resident rather than guess a
            // lifetime for it.
            let Ok(k) = pl.volatile.binary_search(&d) else { return true };
            let (_, last) = pl.volatile_span[k];
            if last < pos {
                frees.push(d);
                false
            } else {
                true
            }
        });
        for &d in &frees {
            self.in_use -= g.obj_size(d);
        }

        // Extend the allocation window: walk tasks pos.. and allocate each
        // task's missing volatiles; stop before the first task that does
        // not fit (paper §3.3: "the allocation will stop after T_k if
        // space for T_{k+1} cannot be allocated").
        let mut allocs: Vec<ObjId> = Vec::new();
        let mut alloc_pos: Vec<u32> = Vec::new();
        let mut next_map = pos;
        'window: for j in pos as usize..order.len() {
            // Volatiles first used at position j are exactly the ones this
            // task introduces (anything used earlier is already allocated
            // or was newly allocated in this window).
            let mut new_here: Vec<ObjId> = Vec::new();
            let mut add = 0u64;
            for &d in &pl.first_use[j] {
                if !self.is_allocated(d) {
                    new_here.push(d);
                    add += g.obj_size(d);
                }
            }
            if self.in_use + add > self.capacity {
                if j as u32 == pos {
                    // The immediate next task does not fit: non-executable.
                    self.maps -= 1;
                    return Err(ExecError::NonExecutable {
                        proc: self.proc,
                        position: pos,
                        needed: self.in_use + add,
                        capacity: self.capacity,
                    });
                }
                break 'window;
            }
            for d in new_here {
                let k = self.allocated.partition_point(|&x| x < d);
                self.allocated.insert(k, d);
                allocs.push(d);
                alloc_pos.push(j as u32);
            }
            self.in_use += add;
            self.peak = self.peak.max(self.in_use);
            next_map = j as u32 + 1;
            if window == MapWindow::Single {
                break 'window;
            }
        }

        // Address notifications for freshly allocated volatiles, pre-sorted
        // by (destination, object) so executors can batch one package per
        // destination with a single linear walk.
        let mut notifies = Vec::new();
        for &d in &allocs {
            for &w in plan.watchers.of(self.proc, d.0) {
                notifies.push(Notify { dst: w, obj: d.0, offset: 0 });
            }
        }
        notifies.sort_unstable_by_key(|n| (n.dst, n.obj));

        Ok(MapAction { frees, allocs, alloc_pos, next_map, notifies })
    }

    /// Undo one allocation committed by the most recent
    /// [`MapPlanner::run_map`]: remove `d` from the allocated set and
    /// release its units. The threaded executor's window-truncation path
    /// calls this when the real arena cannot place a planned *lookahead*
    /// allocation — the object is re-planned by the next MAP, after that
    /// MAP's free wave has had a chance to coalesce room. The peak keeps
    /// its high-water mark (it records what was planned, and the plan
    /// never exceeds capacity).
    pub fn rollback_alloc(&mut self, g: &TaskGraph, d: ObjId) {
        if let Ok(k) = self.allocated.binary_search(&d) {
            self.allocated.remove(k);
            self.in_use -= g.obj_size(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_core::fixtures;

    #[test]
    fn parallel_placement_is_bit_identical() {
        use rapid_core::schedule::CostModel;
        for seed in 0..6u64 {
            let spec = fixtures::RandomGraphSpec {
                objects: 20,
                tasks: 60,
                max_obj_size: 2,
                ..Default::default()
            };
            let g = fixtures::random_irregular_graph(seed, &spec);
            let owner = rapid_sched::cyclic_owner_map(g.num_objects(), 3);
            let assign = rapid_sched::owner_compute_assignment(&g, &owner, 3);
            let sched = rapid_sched::mpo_order(&g, &assign, &CostModel::unit());
            let mm = rapid_core::memreq::min_mem(&g, &sched).min_mem;
            let plan = RtPlan::new(&g, &sched);
            let seq = plan.place_maps(&g, &sched, mm, MapWindow::Greedy).expect("feasible");
            for k in [1usize, 2, 3, 8] {
                let par = plan
                    .place_maps_par(&g, &sched, mm, MapWindow::Greedy, k)
                    .expect("feasible in parallel");
                assert_eq!(par, seq, "seed {seed} nthreads {k}");
            }
            // An infeasible capacity must fail identically too.
            if mm > 1 {
                let e_seq = plan.place_maps(&g, &sched, mm - 1, MapWindow::Greedy).err();
                for k in [1usize, 2, 8] {
                    let e_par = plan.place_maps_par(&g, &sched, mm - 1, MapWindow::Greedy, k).err();
                    assert_eq!(
                        format!("{e_par:?}"),
                        format!("{e_seq:?}"),
                        "seed {seed} nthreads {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn plan_messages_of_figure2() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let plan = RtPlan::new(&g, &sched);
        // Every volatile object on P1 (d1, d3, d5, d7) and P0 (d8) must be
        // carried by some message.
        for (p, want) in [(1u32, vec![0u32, 2, 4, 6]), (0u32, vec![7u32])] {
            for d in want {
                assert!(
                    plan.msgs.iter().any(|m| m.dst_proc == p && m.objs.contains(&ObjId(d))),
                    "d{} must flow to P{p}",
                    d + 1
                );
            }
        }
        // Address watchers: P1's four volatiles are all put by P0 and vice
        // versa for d8.
        for d in [0u32, 2, 4, 6] {
            assert_eq!(plan.watchers.of(1, d), &[0]);
        }
        assert_eq!(plan.watchers.of(0, 7), &[1]);
        assert_eq!(plan.watchers.of(0, 0), &[] as &[u32], "unwatched object");
        // Messages from one task to one proc are coalesced: T[1] (writes
        // d1, read by T[1,2] and T[1,4] on P1) sends exactly one message.
        let t1 = fixtures::figure2_task(&g, "T[1]");
        let from_t1: Vec<_> = plan.msgs.iter().filter(|m| m.src_task == t1).collect();
        assert_eq!(from_t1.len(), 1);
        assert_eq!(from_t1[0].dst_tasks.len(), 2);
        assert_eq!(from_t1[0].units, 1);
    }

    #[test]
    fn sync_only_messages_have_no_objects() {
        // A cross-proc edge carrying no written-and-read object becomes a
        // pure sync message.
        use rapid_core::graph::TaskGraphBuilder;
        use rapid_core::schedule::{Assignment, Schedule};
        let mut b = TaskGraphBuilder::new();
        let d0 = b.add_object(2);
        let d1 = b.add_object(2);
        let t0 = b.add_task(1.0, &[], &[d0]);
        let t1 = b.add_task(1.0, &[], &[d1]);
        b.add_edge(t0, t1); // ordering only: t1 does not read d0
        let g = b.build().unwrap();
        let assign = Assignment { task_proc: vec![0, 1], owner: vec![0, 1], nprocs: 2 };
        let sched = Schedule { assign, order: vec![vec![t0], vec![t1]] };
        let plan = RtPlan::new(&g, &sched);
        assert_eq!(plan.msgs.len(), 1);
        assert!(plan.msgs[0].objs.is_empty());
        assert_eq!(plan.msgs[0].units, 0);
        assert_eq!(plan.data_msg_count(), 0);
        assert!(plan.watchers.is_empty());
    }

    #[test]
    fn control_units_scale_with_structure() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let plan = RtPlan::new(&g, &sched);
        let ctrl = plan.control_units(&g);
        // At least one word per edge, bounded by a small multiple of the
        // total structure.
        assert!(ctrl >= g.num_edges() as u64);
        let upper = 4
            * (g.num_edges()
                + g.tasks().map(|t| g.reads(t).len() + g.writes(t).len()).sum::<usize>()
                + plan.msgs.len() * 8) as u64;
        assert!(ctrl <= upper, "{ctrl} > {upper}");
        // A larger graph has a larger structure.
        let big = fixtures::random_irregular_graph(
            1,
            &fixtures::RandomGraphSpec { tasks: 200, objects: 50, ..Default::default() },
        );
        let owner = rapid_sched::assign::cyclic_owner_map(big.num_objects(), 2);
        let assign = rapid_sched::assign::owner_compute_assignment(&big, &owner, 2);
        let bsched =
            rapid_sched::rcp::rcp_order(&big, &assign, &rapid_core::schedule::CostModel::unit());
        let bplan = RtPlan::new(&big, &bsched);
        assert!(bplan.control_units(&big) > ctrl);
    }

    #[test]
    fn map_planner_window_and_frees() {
        // P1 of figure2 schedule (c) with capacity 8: the planner must
        // split the order into at least two windows and free d3/d5 at the
        // second MAP, as in the paper's Figure 3(a) walkthrough.
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let plan = RtPlan::new(&g, &sched);
        let mut mp = MapPlanner::new(1, 8, plan.perm_units[1]);
        let first = mp.run_map(&g, &sched, &plan, 0).unwrap();
        assert!(first.frees.is_empty());
        let k = first.next_map;
        assert!(k < sched.order[1].len() as u32, "one MAP cannot cover all");
        let second = mp.run_map(&g, &sched, &plan, k).unwrap();
        assert!(!second.frees.is_empty(), "second MAP must recycle volatiles");
        assert!(mp.peak() <= 8);
        assert_eq!(mp.maps(), 2);
    }

    #[test]
    fn map_planner_detects_non_executable() {
        // Capacity 7 < MIN_MEM 8 of schedule (c): some MAP must fail.
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let plan = RtPlan::new(&g, &sched);
        let mut mp = MapPlanner::new(1, 7, plan.perm_units[1]);
        let mut pos = 0u32;
        let mut failed = false;
        while (pos as usize) < sched.order[1].len() {
            match mp.run_map(&g, &sched, &plan, pos) {
                Ok(a) => pos = a.next_map,
                Err(ExecError::NonExecutable { capacity: 7, .. }) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert!(failed);
    }

    #[test]
    fn placement_matches_core_window_peaks() {
        // The placement artifact and rapid-core's window-peak analysis
        // are independent implementations of the same greedy policy; they
        // must agree window for window.
        let g = fixtures::figure2_dag();
        for sched in [fixtures::figure2_schedule_b(), fixtures::figure2_schedule_c()] {
            let plan = RtPlan::new(&g, &sched);
            let cap = rapid_core::memreq::min_mem(&g, &sched).min_mem;
            let placement = plan.place_maps(&g, &sched, cap, MapWindow::Greedy).unwrap();
            let wr = rapid_core::memreq::window_peaks(&g, &sched, cap).unwrap();
            assert_eq!(placement.per_proc.len(), wr.windows.len());
            for p in 0..placement.per_proc.len() {
                let rows = &placement.per_proc[p];
                assert_eq!(rows.len(), wr.windows[p].len(), "P{p} window counts");
                for (pm, wp) in rows.iter().zip(&wr.windows[p]) {
                    assert_eq!((pm.pos, pm.next_map, pm.in_use), (wp.pos, wp.next_map, wp.peak));
                }
                // Windows tile the order contiguously.
                let mut pos = 0u32;
                for pm in rows {
                    assert_eq!(pm.pos, pos);
                    pos = pm.next_map;
                }
                assert_eq!(pos as usize, sched.order[p].len());
            }
            assert_eq!(placement.peaks(&plan.perm_units), wr.peak);
            // One unit below MIN_MEM the placement must fail.
            assert!(matches!(
                plan.place_maps(&g, &sched, cap - 1, MapWindow::Greedy),
                Err(ExecError::NonExecutable { .. })
            ));
        }
    }

    #[test]
    fn placement_replays_planner_actions() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let plan = RtPlan::new(&g, &sched);
        let placement = plan.place_maps(&g, &sched, 8, MapWindow::Greedy).unwrap();
        // Replaying the planner step by step yields the same actions.
        for p in 0..2u32 {
            let mut mp = MapPlanner::new(p, 8, plan.perm_units[p as usize]);
            for pm in &placement.per_proc[p as usize] {
                let a = mp.run_map(&g, &sched, &plan, pm.pos).unwrap();
                assert_eq!(a.frees, pm.frees);
                assert_eq!(a.allocs, pm.allocs);
                assert_eq!(a.next_map, pm.next_map);
                assert_eq!(a.notifies, pm.notifies);
                assert_eq!(mp.in_use(), pm.in_use);
            }
            assert_eq!(mp.maps() as usize, placement.per_proc[p as usize].len());
        }
        assert!(placement.total_maps() >= 3, "cap 8 must split P1's order");
    }

    #[test]
    fn map_planner_single_map_with_ample_memory() {
        let g = fixtures::figure2_dag();
        let sched = fixtures::figure2_schedule_c();
        let plan = RtPlan::new(&g, &sched);
        for p in 0..2u32 {
            let mut mp = MapPlanner::new(p, 1000, plan.perm_units[p as usize]);
            let a = mp.run_map(&g, &sched, &plan, 0).unwrap();
            assert_eq!(a.next_map as usize, sched.order[p as usize].len());
            assert_eq!(mp.maps(), 1);
        }
    }
}
